#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "sweep/sweep.hpp"

namespace skiptrain::sweep {
namespace {

/// A grid small enough that a full sweep runs in well under a second.
SweepGrid tiny_grid() {
  SweepGrid grid;
  grid.name = "tiny";
  grid.data.nodes = 8;
  grid.data.samples_per_node = 6;
  grid.data.test_pool = 40;
  grid.base.total_rounds = 4;
  grid.base.local_steps = 1;
  grid.base.batch_size = 4;
  grid.base.eval_every = 4;
  grid.base.eval_max_samples = 20;
  grid.base.degree = 2;
  return grid;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepGrid, EmptyAxesExpandToSingleBaseTrial) {
  SweepGrid grid = tiny_grid();
  EXPECT_EQ(grid.trial_count(), 1u);
  const auto trials = grid.expand();
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(trials[0].index, 0u);
  EXPECT_EQ(trials[0].options.degree, 2u);
  EXPECT_EQ(trials[0].data.nodes, 8u);
  EXPECT_EQ(trials[0].options.workload, energy::Workload::kCifar10);
}

TEST(SweepGrid, CrossProductCountAndNestingOrder) {
  SweepGrid grid = tiny_grid();
  grid.degrees = {2, 4};
  grid.gamma_syncs = {1, 2, 3};
  grid.gamma_trains = {1, 2};
  EXPECT_EQ(grid.trial_count(), 12u);
  const auto trials = grid.expand();
  ASSERT_EQ(trials.size(), 12u);
  // Degrees outermost, then Γsync, then Γtrain innermost.
  EXPECT_EQ(trials[0].options.degree, 2u);
  EXPECT_EQ(trials[0].options.gamma_sync, 1u);
  EXPECT_EQ(trials[0].options.gamma_train, 1u);
  EXPECT_EQ(trials[1].options.gamma_train, 2u);
  EXPECT_EQ(trials[2].options.gamma_sync, 2u);
  EXPECT_EQ(trials[6].options.degree, 4u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].index, i);
  }
}

TEST(SweepGrid, SeedAxisSetsBothRunAndDataSeed) {
  SweepGrid grid = tiny_grid();
  grid.seeds = {7, 9};
  const auto trials = grid.expand();
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_EQ(trials[0].options.seed, 7u);
  EXPECT_EQ(trials[0].data.seed, 7u);
  EXPECT_EQ(trials[1].options.seed, 9u);
  EXPECT_EQ(trials[1].data.seed, 9u);
}

TEST(SweepGrid, FinalizeCouplesAxesAndRunsBeforeBudgetScaling) {
  SweepGrid grid = tiny_grid();
  grid.degrees = {6, 8, 10};
  grid.algorithms = {sim::Algorithm::kSkipTrain};
  grid.scale_budgets_to_paper = true;
  grid.finalize = [](TrialSpec& spec) {
    const auto [gamma_train, gamma_sync] = tuned_gammas(spec.options.degree);
    spec.options.gamma_train = gamma_train;
    spec.options.gamma_sync = gamma_sync;
    spec.options.total_rounds = 10;
  };
  const auto trials = grid.expand();
  ASSERT_EQ(trials.size(), 3u);
  EXPECT_EQ(trials[1].options.gamma_train, 3u);
  EXPECT_EQ(trials[1].options.gamma_sync, 3u);
  EXPECT_EQ(trials[2].options.gamma_train, 4u);
  EXPECT_EQ(trials[2].options.gamma_sync, 2u);
  // Budget scale uses the finalized horizon (10 / 1000).
  EXPECT_DOUBLE_EQ(trials[0].options.budget_scale, 0.01);
}

TEST(SweepGrid, UnknownDatasetThrows) {
  SweepGrid grid = tiny_grid();
  grid.datasets = {"mnist"};
  EXPECT_THROW(grid.expand(), std::invalid_argument);
}

TEST(DatasetCache, SharesOneBuildPerKey) {
  DatasetCache cache;
  DataConfig config;
  config.nodes = 8;
  config.samples_per_node = 6;
  config.test_pool = 40;
  const auto first = cache.get(config);
  const auto second = cache.get(config);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);

  DataConfig other = config;
  other.seed = 43;
  const auto third = cache.get(other);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(first->data.num_nodes(), 8u);
}

TEST(DatasetCache, ConcurrentGetsReturnTheSameBuild) {
  DatasetCache cache;
  DataConfig config;
  config.nodes = 8;
  config.samples_per_node = 6;
  config.test_pool = 40;
  std::vector<std::shared_ptr<const SharedWorkload>> seen(8);
  // Deliberately raw threads: the point is uncoordinated concurrent
  // cache.get calls, not pool-scheduled ones.
  std::vector<std::thread> threads;  // lint:allow(raw-thread)
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&cache, &seen, config, i] {
      seen[i] = cache.get(config);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& workload : seen) {
    EXPECT_EQ(workload.get(), seen[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultSink, OrdersRowsByTrialIndexNotArrival) {
  ResultSink sink(3);
  for (const std::size_t index : {2u, 0u, 1u}) {
    TrialResult result;
    result.spec.index = index;
    result.spec.options.seed = 100 + index;
    sink.record(std::move(result));
  }
  EXPECT_EQ(sink.recorded(), 3u);
  const auto rows = sink.take_rows();
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].spec.index, i);
    EXPECT_EQ(rows[i].spec.options.seed, 100 + i);
  }
}

TEST(ResultSink, UnrecordedSlotsSurfaceAsFailures) {
  ResultSink sink(2);
  TrialResult result;
  result.spec.index = 0;
  sink.record(result);
  const auto rows = sink.take_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].ok());
  EXPECT_FALSE(rows[1].ok());
  EXPECT_EQ(rows[1].spec.index, 1u);
  EXPECT_NE(rows[1].error.find("missing"), std::string::npos);
  EXPECT_EQ(sink.failures(), 1u);
}

TEST(ResultSink, RejectsDuplicateAndOutOfRangeIndices) {
  ResultSink sink(2);
  TrialResult result;
  result.spec.index = 1;
  sink.record(result);
  EXPECT_THROW(sink.record(result), std::logic_error);
  result.spec.index = 2;
  EXPECT_THROW(sink.record(result), std::out_of_range);
}

TEST(SweepRunner, ResultsAreByteIdenticalAcrossWorkerCounts) {
  SweepGrid grid = tiny_grid();
  grid.algorithms = {sim::Algorithm::kSkipTrain, sim::Algorithm::kDpsgd};
  grid.gamma_trains = {1, 2};
  grid.seeds = {1, 2};

  SweepOptions serial_options;
  serial_options.threads = 1;
  const SweepReport serial = SweepRunner(serial_options).run(grid);

  SweepOptions parallel_options;
  parallel_options.threads = 4;
  const SweepReport parallel = SweepRunner(parallel_options).run(grid);

  ASSERT_EQ(serial.trials.size(), 8u);
  ASSERT_EQ(parallel.trials.size(), 8u);
  EXPECT_TRUE(serial.all_ok());
  EXPECT_TRUE(parallel.all_ok());

  const std::string serial_path =
      testing::TempDir() + "sweep_serial.csv";
  const std::string parallel_path =
      testing::TempDir() + "sweep_parallel.csv";
  serial.write_csv(serial_path);
  parallel.write_csv(parallel_path);
  const std::string serial_bytes = read_file(serial_path);
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, read_file(parallel_path));
}

TEST(SweepRunner, TracingLeavesSummaryCsvByteIdentical) {
  // The observability hard constraint: telemetry is observational only.
  // The SAME grid with phase-span tracing active — and at a different
  // worker count — must produce the identical summary CSV bytes, and the
  // trace/telemetry artifacts must come out well-formed.
  SweepGrid grid = tiny_grid();
  grid.gamma_trains = {1, 2};
  grid.seeds = {1, 2};

  SweepOptions untraced_options;
  untraced_options.threads = 1;
  const SweepReport untraced = SweepRunner(untraced_options).run(grid);

  const std::string trace_path = testing::TempDir() + "sweep_trace.json";
  ASSERT_TRUE(obs::start_tracing(trace_path));
  SweepOptions traced_options;
  traced_options.threads = 4;
  const SweepReport traced = SweepRunner(traced_options).run(grid);
  obs::stop_tracing();

  ASSERT_TRUE(untraced.all_ok());
  ASSERT_TRUE(traced.all_ok());
  const std::string untraced_path = testing::TempDir() + "sweep_untraced.csv";
  const std::string traced_path = testing::TempDir() + "sweep_traced.csv";
  untraced.write_csv(untraced_path);
  traced.write_csv(traced_path);
  const std::string bytes = read_file(untraced_path);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(traced_path));

  // The trace captured spans for the instrumented phases...
  const std::string trace = read_file(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("round.train"), std::string::npos);
  EXPECT_NE(trace.find("round.gossip"), std::string::npos);

  // ...and the aggregate telemetry is consistent: every fresh trial ran 4
  // rounds, each accumulated per-phase time, and the JSON export parses
  // far enough to carry the phase map.
  EXPECT_EQ(traced.telemetry.rounds, 4u * traced.trials.size());
  EXPECT_GT(traced.telemetry.phases.total_seconds(), 0.0);
  EXPECT_GT(traced.telemetry.wire_bytes, 0u);
  const std::string telemetry_path =
      testing::TempDir() + "sweep_telemetry.json";
  write_telemetry_json(telemetry_path, traced);
  const std::string telemetry = read_file(telemetry_path);
  EXPECT_NE(telemetry.find("\"phases\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"train\""), std::string::npos);
  EXPECT_NE(telemetry.find("\"wire_bytes\""), std::string::npos);
}

TEST(SweepRunner, IdentityCodecLeavesSummaryCsvByteIdentical) {
  // The codec axis must be invisible when it holds only the identity
  // codec: same trial expansion, same engine fast path, same CSV bytes as
  // a grid that never mentions codecs (the pre-quantization schema).
  SweepGrid plain = tiny_grid();
  plain.gamma_trains = {1, 2};
  SweepGrid with_axis = tiny_grid();
  with_axis.gamma_trains = {1, 2};
  with_axis.codecs = {quant::Codec::kIdentity};

  SweepOptions options;
  options.threads = 2;
  const SweepReport a = SweepRunner(options).run(plain);
  const SweepReport b = SweepRunner(options).run(with_axis);
  const std::string path_a = testing::TempDir() + "sweep_plain.csv";
  const std::string path_b = testing::TempDir() + "sweep_identity.csv";
  a.write_csv(path_a);
  b.write_csv(path_b);
  const std::string bytes = read_file(path_a);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(path_b));
}

TEST(SweepRunner, QuantizedTrialsAreByteIdenticalAcrossWorkerCounts) {
  // The quantized exchange must keep the sweep determinism contract: the
  // encode/decode fan-out runs on worker threads, so its output must not
  // depend on the pool size.
  SweepGrid grid = tiny_grid();
  grid.codecs = {quant::Codec::kInt8Dithered};
  grid.seeds = {1, 2};

  SweepOptions serial_options;
  serial_options.threads = 1;
  const SweepReport serial = SweepRunner(serial_options).run(grid);
  SweepOptions parallel_options;
  parallel_options.threads = 4;
  const SweepReport parallel = SweepRunner(parallel_options).run(grid);
  EXPECT_TRUE(serial.all_ok());

  const std::string serial_path = testing::TempDir() + "quant_serial.csv";
  const std::string parallel_path = testing::TempDir() + "quant_parallel.csv";
  serial.write_csv(serial_path);
  parallel.write_csv(parallel_path);
  const std::string bytes = read_file(serial_path);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(parallel_path));

  // Quantized grids gain a codec attribution column (identity-only grids
  // keep the pre-quantization schema — see the byte-identity test above).
  EXPECT_NE(bytes.find(",codec,"), std::string::npos);
  EXPECT_NE(bytes.find("int8-dither"), std::string::npos);
}

TEST(SweepRunner, TrialFailuresAreReportedNotSwallowed) {
  SweepGrid grid = tiny_grid();
  // degree >= nodes makes the topology builder throw for the middle trial.
  grid.degrees = {2, 9, 2};
  grid.seeds = {1, 2};
  SweepOptions options;
  options.threads = 2;
  const SweepReport report = SweepRunner(options).run(grid);
  ASSERT_EQ(report.trials.size(), 6u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.failures, 2u);
  for (const TrialResult& trial : report.trials) {
    if (trial.spec.options.degree == 9) {
      EXPECT_FALSE(trial.ok());
      EXPECT_NE(trial.error.find("degree"), std::string::npos);
    } else {
      EXPECT_TRUE(trial.ok());
      EXPECT_GT(trial.result.final_mean_accuracy, 0.0);
    }
  }
  // Failed rows surface in the CSV with their error, status "failed".
  const std::string path = testing::TempDir() + "sweep_failures.csv";
  report.write_csv(path);
  const std::string bytes = read_file(path);
  EXPECT_NE(bytes.find("failed"), std::string::npos);
  EXPECT_NE(bytes.find("degree"), std::string::npos);
}

TEST(SweepRunner, ReusesDatasetBuildsAcrossTrials) {
  SweepGrid grid = tiny_grid();
  grid.gamma_trains = {1, 2, 3};
  SweepRunner runner;
  const SweepReport report = runner.run(grid);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(runner.cache().size(), 1u);  // three trials, one dataset build
}

TEST(SweepRunner, ConsensusColumnPopulatedWhenTracked) {
  SweepGrid grid = tiny_grid();
  const SweepReport untracked = SweepRunner({.threads = 1}).run(grid);
  ASSERT_TRUE(untracked.all_ok());
  auto cells = ResultSink::csv_row(untracked.trials[0]);
  EXPECT_TRUE(cells[cells.size() - 2].empty());  // final_consensus column

  grid.base.track_consensus = true;
  const SweepReport tracked = SweepRunner({.threads = 1}).run(grid);
  ASSERT_TRUE(tracked.all_ok());
  cells = ResultSink::csv_row(tracked.trials[0]);
  EXPECT_FALSE(cells[cells.size() - 2].empty());
}

TEST(SweepConfig, NegativeIntegersAreRejected) {
  EXPECT_THROW(grid_from_kv({{"rounds", "-1"}}), std::invalid_argument);
  EXPECT_THROW(grid_from_kv({{"seeds", "-3,4"}}), std::invalid_argument);
}

TEST(SweepConfig, SplitListExpandsRanges) {
  const auto tokens = split_list(" 1..3 , 7, 10 ");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "1");
  EXPECT_EQ(tokens[2], "3");
  EXPECT_EQ(tokens[3], "7");
  EXPECT_EQ(tokens[4], "10");
  EXPECT_THROW(split_list("5..2"), std::invalid_argument);
}

TEST(SweepConfig, ParseAlgorithmRoundTrips) {
  for (const auto algorithm :
       {sim::Algorithm::kDpsgd, sim::Algorithm::kDpsgdAllReduce,
        sim::Algorithm::kSkipTrain, sim::Algorithm::kSkipTrainConstrained,
        sim::Algorithm::kGreedy}) {
    EXPECT_EQ(parse_algorithm(algorithm_token(algorithm)), algorithm);
  }
  EXPECT_THROW((void)parse_algorithm("fedavg"), std::invalid_argument);
}

TEST(SweepConfig, GridFromKvBuildsAxesAndBase) {
  const SweepGrid grid = grid_from_kv({{"name", "custom"},
                                       {"dataset", "both"},
                                       {"nodes", "8,16"},
                                       {"algorithms", "skiptrain,dpsgd"},
                                       {"degrees", "2,4"},
                                       {"gamma-train", "1..2"},
                                       {"rounds", "6"},
                                       {"batch", "4"},
                                       {"seeds", "1,2,3"},
                                       {"tuned-gammas", "false"},
                                       {"eval-on-validation", "true"}});
  EXPECT_EQ(grid.name, "custom");
  EXPECT_EQ(grid.datasets.size(), 2u);
  EXPECT_EQ(grid.node_counts.size(), 2u);
  EXPECT_EQ(grid.algorithms.size(), 2u);
  EXPECT_EQ(grid.gamma_trains.size(), 2u);
  EXPECT_EQ(grid.base.total_rounds, 6u);
  EXPECT_EQ(grid.base.batch_size, 4u);
  EXPECT_TRUE(grid.base.eval_on_validation);
  EXPECT_FALSE(grid.finalize);
  EXPECT_EQ(grid.trial_count(), 2u * 2u * 3u * 2u * 2u * 2u);
}

TEST(SweepConfig, CodecKeyParsesAxis) {
  const SweepGrid grid =
      grid_from_kv({{"codecs", "identity,fp16,int8,int8-dither"}});
  ASSERT_EQ(grid.codecs.size(), 4u);
  EXPECT_EQ(grid.codecs[0], quant::Codec::kIdentity);
  EXPECT_EQ(grid.codecs[3], quant::Codec::kInt8Dithered);
  EXPECT_EQ(grid.trial_count(), 4u);
  // Singular form and trial expansion.
  const auto trials = grid_from_kv({{"codec", "int8"}}).expand();
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(trials[0].options.exchange_codec, quant::Codec::kInt8);
  EXPECT_THROW(grid_from_kv({{"codec", "int4"}}), std::invalid_argument);
}

TEST(SweepConfig, UnknownKeyThrows) {
  EXPECT_THROW(grid_from_kv({{"topology", "ring"}}), std::invalid_argument);
  EXPECT_THROW(grid_from_kv({{"rounds", "abc"}}), std::invalid_argument);
}

TEST(SweepConfig, LoadGridFileParsesCommentsAndPairs) {
  const std::string path = testing::TempDir() + "grid.conf";
  {
    std::ofstream out(path);
    out << "# gamma sweep\n"
        << "name = filegrid\n"
        << "degrees = 2, 4  # inline comment\n"
        << "gamma-sync = 1..2\n"
        << "\n"
        << "tuned-gammas = true\n";
  }
  const SweepGrid grid = load_grid_file(path);
  EXPECT_EQ(grid.name, "filegrid");
  EXPECT_EQ(grid.degrees.size(), 2u);
  EXPECT_EQ(grid.gamma_syncs.size(), 2u);
  EXPECT_TRUE(static_cast<bool>(grid.finalize));
  EXPECT_THROW(load_grid_file(testing::TempDir() + "missing.conf"),
               std::runtime_error);
}

TEST(SweepConfig, PresetsExpandToTheirPublishedShapes) {
  EXPECT_EQ(make_preset("fig3").trial_count(), 48u);   // 3 deg x 4x4 Γ
  EXPECT_EQ(make_preset("fig5").trial_count(), 12u);   // 2 ds x 2 alg x 3 deg
  EXPECT_EQ(make_preset("fig6").trial_count(), 9u);    // 3 alg x 3 deg
  EXPECT_EQ(make_preset("table3").trial_count(), 12u);
  EXPECT_EQ(make_preset("quant").trial_count(), 64u);  // 4x4 Γ x 4 codecs
  EXPECT_EQ(make_preset("smartphone").trial_count(), 3u);
  EXPECT_THROW(make_preset("fig9"), std::invalid_argument);

  // The fig5 preset couples the tuned Γ pair to the topology degree.
  const auto trials = make_preset("fig5").expand();
  for (const TrialSpec& spec : trials) {
    if (spec.options.algorithm == sim::Algorithm::kSkipTrain) {
      const auto [gamma_train, gamma_sync] =
          tuned_gammas(spec.options.degree);
      EXPECT_EQ(spec.options.gamma_train, gamma_train);
      EXPECT_EQ(spec.options.gamma_sync, gamma_sync);
    }
  }

  // --eval-every overrides every preset's hardcoded cadence.
  PresetParams cadence;
  cadence.eval_every = 7;
  for (const char* name :
       {"fig3", "fig5", "fig6", "table3", "quant", "smartphone"}) {
    const auto cadence_trials = make_preset(name, cadence).expand();
    ASSERT_FALSE(cadence_trials.empty());
    EXPECT_EQ(cadence_trials[0].options.eval_every, 7u) << name;
  }

  // --full swaps in the paper horizon per workload.
  PresetParams params;
  params.full = true;
  for (const TrialSpec& spec : make_preset("table3", params).expand()) {
    EXPECT_EQ(spec.data.nodes, 256u);
    EXPECT_EQ(spec.options.total_rounds,
              energy::workload_spec(spec.options.workload).total_rounds);
    EXPECT_DOUBLE_EQ(spec.options.budget_scale, 1.0);
  }
}


#ifdef SKIPTRAIN_TEST_DATA_DIR
TEST(SweepGolden, Fig3IdentityCodecCsvByteIdenticalToSeed) {
  // The committed golden was produced by the seed kernels (PR 5 base).
  // The blocked GEMM layer sits under every trial's training math, so this
  // pins the whole compute substrate to bit-identical results: a single
  // flipped bit anywhere in gemm/conv/codec changes some accuracy cell
  // and fails the byte compare.
  PresetParams params;
  params.nodes = 12;
  params.rounds = 40;
  SweepGrid grid = make_preset("fig3", params);
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  const SweepReport report = runner.run(grid);
  EXPECT_TRUE(report.all_ok());
  const std::string path =
      ::testing::TempDir() + "/golden_fig3_check.csv";
  report.write_csv(path);
  const std::string golden = read_file(
      std::string(SKIPTRAIN_TEST_DATA_DIR) + "/golden_fig3_n12_r40_identity.csv");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(read_file(path), golden);
}
#endif  // SKIPTRAIN_TEST_DATA_DIR

}  // namespace
}  // namespace skiptrain::sweep
