#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/mixing.hpp"
#include "graph/topology.hpp"

namespace skiptrain::graph {
namespace {

TEST(Topology, AddEdgeRejectsInvalid) {
  Topology topo(4);
  topo.add_edge(0, 1);
  EXPECT_THROW(topo.add_edge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(topo.add_edge(1, 0), std::invalid_argument);  // same, reversed
  EXPECT_THROW(topo.add_edge(2, 2), std::invalid_argument);  // self loop
  EXPECT_THROW(topo.add_edge(0, 9), std::invalid_argument);  // out of range
}

TEST(Topology, NeighborsAreSorted) {
  Topology topo(5);
  topo.add_edge(3, 1);
  topo.add_edge(3, 4);
  topo.add_edge(3, 0);
  EXPECT_EQ(topo.neighbors(3), (std::vector<std::size_t>{0, 1, 4}));
  EXPECT_EQ(topo.degree(3), 3u);
  EXPECT_TRUE(topo.has_edge(1, 3));
  EXPECT_FALSE(topo.has_edge(1, 4));
}

TEST(Ring, Properties) {
  const Topology ring = make_ring(10);
  EXPECT_EQ(ring.num_edges(), 10u);
  EXPECT_TRUE(ring.is_regular());
  EXPECT_EQ(ring.degree(0), 2u);
  EXPECT_TRUE(ring.is_connected());
  EXPECT_EQ(ring.diameter(), 5u);
}

TEST(FullyConnected, Properties) {
  const Topology full = make_fully_connected(8);
  EXPECT_EQ(full.num_edges(), 28u);
  EXPECT_TRUE(full.is_regular());
  EXPECT_EQ(full.degree(3), 7u);
  EXPECT_EQ(full.diameter(), 1u);
}

TEST(Star, Properties) {
  const Topology star = make_star(9);
  EXPECT_EQ(star.degree(0), 8u);
  EXPECT_EQ(star.degree(1), 1u);
  EXPECT_FALSE(star.is_regular());
  EXPECT_TRUE(star.is_connected());
  EXPECT_EQ(star.diameter(), 2u);
}

TEST(Circulant, EvenAndOddDegrees) {
  const Topology even = make_circulant(12, 4);
  EXPECT_TRUE(even.is_regular());
  EXPECT_EQ(even.degree(0), 4u);
  EXPECT_TRUE(even.is_connected());

  const Topology odd = make_circulant(12, 5);
  EXPECT_TRUE(odd.is_regular());
  EXPECT_EQ(odd.degree(0), 5u);
  EXPECT_TRUE(odd.is_connected());

  EXPECT_THROW(make_circulant(11, 5), std::invalid_argument);  // odd d, odd n
  EXPECT_THROW(make_circulant(4, 4), std::invalid_argument);   // d >= n
}

class RandomRegularParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RandomRegularParam, RegularConnectedDeterministic) {
  const auto [n, d] = GetParam();
  util::Rng rng_a(101), rng_b(101);
  const Topology a = make_random_regular(n, d, rng_a);
  const Topology b = make_random_regular(n, d, rng_b);

  EXPECT_TRUE(a.is_regular());
  EXPECT_EQ(a.degree(0), d);
  EXPECT_TRUE(a.is_connected());
  EXPECT_EQ(a.num_edges(), n * d / 2);

  // Determinism: identical seed -> identical graph.
  for (std::size_t node = 0; node < n; ++node) {
    EXPECT_EQ(a.neighbors(node), b.neighbors(node));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, RandomRegularParam,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(32, 6),
                      std::make_tuple(64, 6), std::make_tuple(64, 8),
                      std::make_tuple(64, 10), std::make_tuple(256, 6)));

TEST(RandomRegular, RejectsInvalidArguments) {
  util::Rng rng(1);
  EXPECT_THROW(make_random_regular(5, 5, rng), std::invalid_argument);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);  // odd
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  util::Rng rng(7);
  const std::size_t n = 100;
  const double p = 0.1;
  const Topology graph = make_erdos_renyi(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(graph.num_edges()), expected,
              expected * 0.3);
}

// --- Metropolis-Hastings mixing matrices ------------------------------------

class MixingParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MixingParam, DoublyStochasticSymmetricSparse) {
  const auto [n, d] = GetParam();
  util::Rng rng(55);
  const Topology topo = make_random_regular(n, d, rng);
  const MixingMatrix mix = MixingMatrix::metropolis_hastings(topo);

  EXPECT_EQ(mix.num_nodes(), n);
  EXPECT_LT(mix.stochasticity_error(), 1e-5);
  EXPECT_LT(mix.symmetry_error(), 1e-7);

  // Zero weight on non-edges; positive on edges; correct MH value.
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t j : topo.neighbors(i)) {
      const float expected =
          1.0f / static_cast<float>(std::max(topo.degree(i), topo.degree(j)) + 1);
      EXPECT_FLOAT_EQ(mix.weight(i, j), expected);
    }
    EXPECT_GE(mix.self_weight(i), 0.0f);
  }
  EXPECT_EQ(mix.weight(0, (n / 2 + 1)), topo.has_edge(0, n / 2 + 1)
                                            ? mix.weight(n / 2 + 1, 0)
                                            : 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, MixingParam,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(32, 6),
                      std::make_tuple(32, 8), std::make_tuple(64, 10)));

TEST(Mixing, DenseMatchesSparse) {
  util::Rng rng(3);
  const Topology topo = make_random_regular(12, 4, rng);
  const MixingMatrix mix = MixingMatrix::metropolis_hastings(topo);
  const std::vector<double> dense = mix.dense();
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(dense[i * 12 + j], static_cast<double>(mix.weight(i, j)),
                  1e-9);
    }
  }
}

TEST(Mixing, AllReduceIsUniform) {
  const MixingMatrix mix = MixingMatrix::all_reduce(8);
  EXPECT_LT(mix.stochasticity_error(), 1e-6);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(mix.self_weight(i), 0.125f);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(mix.weight(i, j), 0.125f);
    }
  }
  // Perfect mixing: λ2 = 0, spectral gap = 1.
  EXPECT_NEAR(mix.second_eigenvalue(), 0.0, 1e-6);
}

TEST(Mixing, SpectralGapOrderedByDegree) {
  // The paper's Figure 3 intuition: denser graphs mix faster, so the
  // optimal Γsync shrinks with degree. Spectral gap is the formal measure.
  util::Rng rng(77);
  const MixingMatrix ring =
      MixingMatrix::metropolis_hastings(make_ring(64));
  const MixingMatrix reg6 = MixingMatrix::metropolis_hastings(
      make_random_regular(64, 6, rng));
  const MixingMatrix reg10 = MixingMatrix::metropolis_hastings(
      make_random_regular(64, 10, rng));
  const MixingMatrix full =
      MixingMatrix::metropolis_hastings(make_fully_connected(64));

  const double gap_ring = ring.spectral_gap();
  const double gap6 = reg6.spectral_gap();
  const double gap10 = reg10.spectral_gap();
  const double gap_full = full.spectral_gap();

  EXPECT_LT(gap_ring, gap6);
  EXPECT_LT(gap6, gap10);
  EXPECT_LT(gap10, gap_full + 1e-9);
  EXPECT_GT(gap_ring, 0.0);
}

TEST(Mixing, SecondEigenvalueOfRingMatchesTheory) {
  // MH on a ring gives W = 1/3 (I + S + S^T); eigenvalues are
  // (1 + 2 cos(2πk/n)) / 3, so λ2 = (1 + 2 cos(2π/n)) / 3.
  const std::size_t n = 32;
  const MixingMatrix mix = MixingMatrix::metropolis_hastings(make_ring(n));
  const double theory =
      (1.0 + 2.0 * std::cos(2.0 * 3.14159265358979 / static_cast<double>(n))) /
      3.0;
  EXPECT_NEAR(mix.second_eigenvalue(400), theory, 1e-3);
}

TEST(Topology, DescribeMentionsKeyFacts) {
  const std::string desc = make_ring(8).describe();
  EXPECT_NE(desc.find("n=8"), std::string::npos);
  EXPECT_NE(desc.find("2-regular"), std::string::npos);
  EXPECT_NE(desc.find("connected=yes"), std::string::npos);
}

}  // namespace
}  // namespace skiptrain::graph
