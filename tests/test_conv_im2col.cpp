// Bit-identity of the im2col + GEMM Conv2d path against the retained
// direct loop nest, across fuzzed shapes including odd kernel/stride/
// padding combos, unit dims, and zero-heavy gradients (the direct loop's
// g == 0 skip). Forward outputs, weight/bias gradients, and input
// gradients must all match bit for bit.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/im2col.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {
namespace {

using tensor::Tensor;

void expect_bits_equal(std::span<const float> got, std::span<const float> want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " diverges at " << i << ": " << got[i] << " vs " << want[i];
  }
}

struct ConvCase {
  std::size_t batch, in_c, out_c, k, stride, pad, h, w;
};

/// Builds two identically-initialized layers (one per algorithm), runs
/// forward + backward on the same data, and compares everything bitwise.
/// `grad_zero_fraction` zeroes part of grad_output to exercise the skip.
void check_case(const ConvCase& cc, std::uint64_t seed,
                double grad_zero_fraction) {
  SCOPED_TRACE(::testing::Message()
               << "b=" << cc.batch << " in_c=" << cc.in_c
               << " out_c=" << cc.out_c << " k=" << cc.k << " s=" << cc.stride
               << " p=" << cc.pad << " h=" << cc.h << " w=" << cc.w
               << " seed=" << seed);
  Conv2d direct(cc.in_c, cc.out_c, cc.k, cc.stride, cc.pad);
  Conv2d lowered(cc.in_c, cc.out_c, cc.k, cc.stride, cc.pad);
  direct.set_algorithm(Conv2dAlgo::kDirect);
  lowered.set_algorithm(Conv2dAlgo::kIm2col);

  util::Rng rng(seed);
  std::vector<float> params(direct.parameter_count());
  rng.fill_normal(params, 0.0f, 0.5f);
  std::copy(params.begin(), params.end(), direct.parameters().begin());
  std::copy(params.begin(), params.end(), lowered.parameters().begin());

  Tensor input({cc.batch, cc.in_c, cc.h, cc.w});
  rng.fill_normal(input.data(), 0.0f, 1.0f);
  // Post-ReLU-like inputs: exact zeros in the data (not the parameters)
  // are included by both paths identically.
  for (std::size_t i = 0; i < input.numel(); i += 5) input.data()[i] = 0.0f;

  const auto out_shape = direct.output_shape(input.shape());
  Tensor out_a(out_shape), out_b(out_shape);
  direct.forward(input, out_a);
  lowered.forward(input, out_b);
  expect_bits_equal(out_b.data(), out_a.data(), "forward");

  Tensor gout(out_shape);
  rng.fill_normal(gout.data(), 0.0f, 1.0f);
  if (grad_zero_fraction > 0.0) {
    for (auto& v : gout.data()) {
      if (rng.uniform() < grad_zero_fraction) v = 0.0f;
    }
  }
  Tensor gin_a(input.shape()), gin_b(input.shape());
  direct.zero_grad();
  lowered.zero_grad();
  direct.backward(input, gout, gin_a);
  lowered.backward(input, gout, gin_b);
  expect_bits_equal(gin_b.data(), gin_a.data(), "grad_input");
  expect_bits_equal(lowered.gradients(), direct.gradients(), "grad_params");

  // Second backward without zero_grad: gradient accumulation (beta == 1
  // into existing grads) must stay bit-identical too.
  direct.backward(input, gout, gin_a);
  lowered.backward(input, gout, gin_b);
  expect_bits_equal(lowered.gradients(), direct.gradients(),
                    "grad_params accumulated");
}

TEST(ConvIm2col, ModelZooShapes) {
  // GN-LeNet conv1..3 and the FEMNIST CNN convs (batch kept small).
  check_case({2, 3, 32, 5, 1, 2, 32, 32}, 11, 0.0);
  check_case({2, 32, 32, 5, 1, 2, 16, 16}, 12, 0.3);
  check_case({2, 32, 64, 5, 1, 2, 8, 8}, 13, 0.5);
  check_case({2, 1, 32, 5, 1, 2, 28, 28}, 14, 0.0);
}

TEST(ConvIm2col, OddKernelStridePaddingCombos) {
  check_case({1, 2, 3, 3, 2, 1, 9, 7}, 21, 0.0);
  check_case({2, 3, 4, 4, 3, 2, 11, 13}, 22, 0.4);
  check_case({1, 1, 1, 7, 1, 3, 7, 7}, 23, 0.0);
  check_case({2, 2, 2, 5, 4, 0, 17, 9}, 24, 0.2);
  check_case({1, 3, 2, 2, 1, 0, 6, 6}, 25, 0.0);
  check_case({1, 2, 5, 3, 1, 2, 4, 5}, 26, 0.6);
}

TEST(ConvIm2col, UnitAndDegenerateDims) {
  check_case({1, 1, 1, 1, 1, 0, 1, 1}, 31, 0.0);
  check_case({1, 1, 1, 1, 1, 0, 5, 5}, 32, 0.0);  // pointwise fast path
  check_case({3, 4, 6, 1, 1, 0, 8, 8}, 33, 0.3);  // pointwise, batch > 1
  check_case({1, 1, 2, 3, 1, 1, 1, 1}, 34, 0.0);  // input smaller than kernel
  check_case({1, 2, 1, 3, 2, 2, 2, 3}, 35, 0.5);
}

TEST(ConvIm2col, FuzzedShapes) {
  util::Rng rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    ConvCase cc;
    cc.batch = 1 + rng.uniform_int(3);
    cc.in_c = 1 + rng.uniform_int(5);
    cc.out_c = 1 + rng.uniform_int(7);
    cc.k = 1 + rng.uniform_int(5);
    cc.stride = 1 + rng.uniform_int(3);
    cc.pad = rng.uniform_int(cc.k);
    cc.h = cc.k + rng.uniform_int(12);
    cc.w = cc.k + rng.uniform_int(12);
    // Keep geometry valid: padded extent must cover the kernel.
    if (cc.h + 2 * cc.pad < cc.k || cc.w + 2 * cc.pad < cc.k) continue;
    check_case(cc, 4000 + static_cast<std::uint64_t>(trial),
               trial % 3 == 0 ? 0.5 : 0.0);
  }
}

TEST(ConvIm2col, Im2colOrdersPatchDimAsDirectLoop) {
  // Spot-check the (ic, ky, kx) row order and padding zeros of the patch
  // matrix on a tiny asymmetric case.
  ConvGeometry g;
  g.in_c = 2;
  g.h = 2;
  g.w = 3;
  g.k = 2;
  g.stride = 1;
  g.pad = 1;
  g.oh = 3;
  g.ow = 4;
  std::vector<float> image(g.in_c * g.h * g.w);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<float>(i + 1);
  }
  std::vector<float> col(g.patch() * g.out_hw(), -1.0f);
  im2col_kmajor(g, image.data(), col.data());
  // Row κ=0 is (ic=0, ky=0, kx=0): input (oy-1, ox-1) with zero padding.
  const float* row0 = col.data();
  EXPECT_EQ(row0[0], 0.0f);                   // oy=0, ox=0 -> (-1,-1) pad
  EXPECT_EQ(row0[1 * g.ow + 1], image[0]);    // oy=1, ox=1 -> (0,0)
  EXPECT_EQ(row0[2 * g.ow + 2], image[4]);    // oy=2, ox=2 -> (1,1)
  // Row κ for (ic=1, ky=1, kx=1): input (oy, ox) of plane 1.
  const std::size_t kappa = (1 * g.k + 1) * g.k + 1;
  const float* row = col.data() + kappa * g.out_hw();
  EXPECT_EQ(row[0], image[6]);                // oy=0, ox=0 -> plane1 (0,0)
  EXPECT_EQ(row[3], 0.0f);                    // ox=3 -> ix=3 out of bounds

  // im2row is the transpose of im2col.
  std::vector<float> colr(g.out_hw() * g.patch(), -1.0f);
  im2row_posmajor(g, image.data(), colr.data());
  for (std::size_t kp = 0; kp < g.patch(); ++kp) {
    for (std::size_t pos = 0; pos < g.out_hw(); ++pos) {
      ASSERT_EQ(colr[pos * g.patch() + kp], col[kp * g.out_hw() + pos])
          << "kappa=" << kp << " pos=" << pos;
    }
  }
}

}  // namespace
}  // namespace skiptrain::nn
