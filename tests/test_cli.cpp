#include <gtest/gtest.h>

#include <array>

#include "util/cli.hpp"

namespace skiptrain::util {
namespace {

ArgParser make_parser() {
  ArgParser args("test", "test parser");
  args.add_int("nodes", 256, "node count");
  args.add_double("lr", 0.1, "learning rate");
  args.add_string("dataset", "cifar", "dataset name");
  args.add_flag("full", "full scale");
  return args;
}

TEST(Cli, DefaultsApply) {
  ArgParser args = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("nodes"), 256);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 0.1);
  EXPECT_EQ(args.get_string("dataset"), "cifar");
  EXPECT_FALSE(args.get_flag("full"));
}

TEST(Cli, EqualsSyntax) {
  ArgParser args = make_parser();
  const std::array<const char*, 4> argv{"prog", "--nodes=64", "--lr=0.5",
                                        "--dataset=femnist"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("nodes"), 64);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 0.5);
  EXPECT_EQ(args.get_string("dataset"), "femnist");
}

TEST(Cli, SpaceSyntax) {
  ArgParser args = make_parser();
  const std::array<const char*, 3> argv{"prog", "--nodes", "32"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("nodes"), 32);
}

TEST(Cli, FlagSetsTrue) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--full"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(args.get_flag("full"));
}

TEST(Cli, UnknownOptionThrows) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--bogus=1"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, MalformedIntThrows) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--nodes=abc"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, MalformedDoubleThrows) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--lr=fast"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, MissingValueThrows) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--nodes"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, FlagWithValueThrows) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "--full=1"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, PositionalArgumentRejected) {
  ArgParser args = make_parser();
  const std::array<const char*, 2> argv{"prog", "stray"};
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Cli, DuplicateOptionRegistrationThrows) {
  ArgParser args("p", "d");
  args.add_int("x", 1, "first");
  EXPECT_THROW(args.add_int("x", 2, "dup"), std::runtime_error);
}

TEST(Cli, UnknownGetterThrows) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.get_int("lr"), std::runtime_error);     // wrong type
  EXPECT_THROW(args.get_int("nothing"), std::runtime_error);  // missing
}

TEST(Cli, UsageListsOptions) {
  ArgParser args = make_parser();
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("--full"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace skiptrain::util
