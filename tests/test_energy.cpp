// Energy-trace parity tests: the canonical traces must reproduce Table 2
// and the closed-form energy columns of Table 3 / Figure 3, and the
// Burnout/AI-Benchmark/FedScale derivation pipeline must agree with the
// canonical values within a few percent.
#include <gtest/gtest.h>

#include <cmath>

#include "core/equations.hpp"
#include "energy/accountant.hpp"
#include "energy/device.hpp"
#include "energy/fleet.hpp"
#include "quant/codec.hpp"

namespace skiptrain::energy {
namespace {

TEST(WorkloadSpec, Table1Constants) {
  const WorkloadSpec& cifar = workload_spec(Workload::kCifar10);
  EXPECT_EQ(cifar.model_params, 89834u);
  EXPECT_EQ(cifar.batch_size, 32u);
  EXPECT_EQ(cifar.local_steps, 20u);
  EXPECT_EQ(cifar.total_rounds, 1000u);
  EXPECT_DOUBLE_EQ(cifar.battery_drain_fraction, 0.10);

  const WorkloadSpec& femnist = workload_spec(Workload::kFemnist);
  EXPECT_EQ(femnist.model_params, 1690046u);
  EXPECT_EQ(femnist.batch_size, 16u);
  EXPECT_EQ(femnist.local_steps, 7u);
  EXPECT_EQ(femnist.total_rounds, 3000u);
  EXPECT_DOUBLE_EQ(femnist.battery_drain_fraction, 0.50);
}

TEST(Traces, Table2CanonicalValues) {
  const auto& traces = smartphone_traces();
  ASSERT_EQ(traces.size(), 4u);

  // Displayed Table 2 energies (mWh), after rounding to the paper's
  // precision.
  const auto rounds_to = [](double value, double displayed) {
    return std::abs(value - displayed) < 0.5 ||
           std::abs(value - displayed) / displayed < 0.05;
  };
  EXPECT_EQ(traces[0].profile.name, "Xiaomi 12 Pro");
  EXPECT_TRUE(rounds_to(traces[0].cifar_mwh, 6.5));
  EXPECT_TRUE(rounds_to(traces[0].femnist_mwh, 22.0));
  EXPECT_EQ(traces[0].cifar_rounds, 272u);
  EXPECT_EQ(traces[0].femnist_rounds, 413u);

  EXPECT_EQ(traces[1].profile.name, "Samsung Galaxy S22 Ultra");
  EXPECT_TRUE(rounds_to(traces[1].cifar_mwh, 6.0));
  EXPECT_TRUE(rounds_to(traces[1].femnist_mwh, 20.0));
  EXPECT_EQ(traces[1].cifar_rounds, 324u);
  EXPECT_EQ(traces[1].femnist_rounds, 492u);

  EXPECT_EQ(traces[2].profile.name, "OnePlus Nord 2 5G");
  EXPECT_TRUE(rounds_to(traces[2].cifar_mwh, 2.6));
  EXPECT_TRUE(rounds_to(traces[2].femnist_mwh, 8.4));
  EXPECT_EQ(traces[2].cifar_rounds, 681u);
  EXPECT_EQ(traces[2].femnist_rounds, 1034u);

  EXPECT_EQ(traces[3].profile.name, "Xiaomi Poco X3");
  EXPECT_TRUE(rounds_to(traces[3].cifar_mwh, 8.5));
  EXPECT_TRUE(rounds_to(traces[3].femnist_mwh, 28.0));
  EXPECT_EQ(traces[3].cifar_rounds, 272u);
  EXPECT_EQ(traces[3].femnist_rounds, 413u);
}

TEST(Traces, Table3DpsgdEnergyReproduces) {
  // D-PSGD trains every node every round:
  //   CIFAR-10: 256 x 1000 x mean = 1510.04 Wh,
  //   FEMNIST:  256 x 3000 x mean = 14914.38 Wh.
  const double cifar_total =
      mean_energy_per_round_mwh(Workload::kCifar10) * 256.0 * 1000.0 / 1000.0;
  EXPECT_NEAR(cifar_total, 1510.04, 1510.04 * 0.001);

  const double femnist_total =
      mean_energy_per_round_mwh(Workload::kFemnist) * 256.0 * 3000.0 / 1000.0;
  EXPECT_NEAR(femnist_total, 14914.38, 14914.38 * 0.001);
}

TEST(Traces, Table3SkipTrainEnergyReproduces) {
  // SkipTrain executes T_train coordinated training rounds (Eq. 4).
  const Fleet fleet_cifar = Fleet::even(256, Workload::kCifar10);
  // 6-regular: Γtrain = Γsync = 4 -> 500 training rounds -> 755.02 Wh.
  const std::size_t t500 = core::count_training_rounds(4, 4, 1000);
  EXPECT_NEAR(fleet_cifar.total_training_energy_wh(t500), 755.02, 1.0);
  // 10-regular: Γtrain = 4, Γsync = 2 -> ~667 training rounds -> 1008.71 Wh.
  const std::size_t t667 = core::count_training_rounds(4, 2, 1000);
  EXPECT_NEAR(fleet_cifar.total_training_energy_wh(t667), 1008.71,
              1008.71 * 0.01);

  const Fleet fleet_femnist = Fleet::even(256, Workload::kFemnist);
  // FEMNIST 6/8-regular: 1500 training rounds -> 7457.19 Wh.
  const std::size_t t1500 = core::count_training_rounds(4, 4, 3000);
  EXPECT_NEAR(fleet_femnist.total_training_energy_wh(t1500), 7457.19, 8.0);
  // FEMNIST 10-regular: 2000 training rounds -> 9942.92 Wh.
  const std::size_t t2000 = core::count_training_rounds(4, 2, 3000);
  EXPECT_NEAR(fleet_femnist.total_training_energy_wh(t2000), 9942.92,
              9942.92 * 0.01);
}

TEST(Traces, Figure3EnergyHeatmapReproduces) {
  // Figure 3 right: energy as a function of (Γtrain, Γsync) over 1000
  // rounds at 256 nodes. Selected cells from the paper.
  const Fleet fleet = Fleet::even(256, Workload::kCifar10);
  const auto energy_at = [&](std::size_t gt, std::size_t gs) {
    return fleet.total_training_energy_wh(
        core::count_training_rounds(gt, gs, 1000));
  };
  EXPECT_NEAR(energy_at(1, 1), 755.0, 4.0);
  EXPECT_NEAR(energy_at(1, 4), 302.0, 3.0);
  EXPECT_NEAR(energy_at(4, 1), 1208.0, 7.0);
  EXPECT_NEAR(energy_at(2, 3), 604.0, 4.0);
  EXPECT_NEAR(energy_at(3, 2), 906.0, 6.0);
}

TEST(DerivationPipeline, AgreesWithCanonicalTrace) {
  // The Burnout + AI-Benchmark + FedScale formula must land within ~3% of
  // the canonical Table 2 energies on BOTH workloads.
  for (const TraceEntry& entry : smartphone_traces()) {
    const double derived_cifar = entry.profile.derived_energy_per_round_mwh(
        workload_spec(Workload::kCifar10));
    EXPECT_NEAR(derived_cifar, entry.cifar_mwh, entry.cifar_mwh * 0.03)
        << entry.profile.name;
    const double derived_femnist = entry.profile.derived_energy_per_round_mwh(
        workload_spec(Workload::kFemnist));
    EXPECT_NEAR(derived_femnist, entry.femnist_mwh, entry.femnist_mwh * 0.03)
        << entry.profile.name;
  }
}

TEST(DerivationPipeline, BudgetRoundsMatchTable2) {
  // τ derived from battery capacity and the canonical per-round energy:
  // exact on CIFAR (battery was calibrated from that column), within 5% on
  // FEMNIST (the paper's own rounding slack; see DESIGN.md).
  for (const TraceEntry& entry : smartphone_traces()) {
    const std::size_t derived_cifar = entry.profile.budget_rounds(
        workload_spec(Workload::kCifar10), entry.cifar_mwh);
    EXPECT_EQ(derived_cifar, entry.cifar_rounds) << entry.profile.name;

    const std::size_t derived_femnist = entry.profile.budget_rounds(
        workload_spec(Workload::kFemnist), entry.femnist_mwh);
    const double rel =
        std::abs(static_cast<double>(derived_femnist) -
                 static_cast<double>(entry.femnist_rounds)) /
        static_cast<double>(entry.femnist_rounds);
    EXPECT_LT(rel, 0.05) << entry.profile.name << " derived="
                         << derived_femnist;
  }
}

TEST(DerivationPipeline, FemnistCostsMoreThanCifar) {
  // Larger model (|x| 1.69M vs 90k) though smaller batch/steps: the paper's
  // Table 2 shows ~3.3x higher per-round energy for FEMNIST.
  for (const TraceEntry& entry : smartphone_traces()) {
    const double ratio = entry.femnist_mwh / entry.cifar_mwh;
    EXPECT_GT(ratio, 3.0) << entry.profile.name;
    EXPECT_LT(ratio, 3.7) << entry.profile.name;
  }
}

TEST(CommModel, IntroTwoHundredXClaim) {
  // §1: on CIFAR-10 with 256 nodes / 1000 rounds, training = 1.51 kWh and
  // sharing+aggregation ≈ 7 Wh, i.e. >200x cheaper.
  const CommModel comm;
  const WorkloadSpec& spec = workload_spec(Workload::kCifar10);
  const double per_exchange = comm.exchange_energy_mwh(spec.model_params, 6);
  const double total_comm_wh = per_exchange * 256.0 * 1000.0 / 1000.0;
  EXPECT_NEAR(total_comm_wh, 7.0, 0.5);

  const double total_train_wh = 1510.04;
  EXPECT_GT(total_train_wh / total_comm_wh, 200.0);
}

TEST(Fleet, EvenAssignmentCounts) {
  const Fleet fleet = Fleet::even(256, Workload::kCifar10);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t node = 0; node < 256; ++node) {
    ++counts[fleet.device_index(node)];
  }
  for (const std::size_t c : counts) EXPECT_EQ(c, 64u);
  EXPECT_NEAR(fleet.mean_training_energy_mwh(),
              mean_energy_per_round_mwh(Workload::kCifar10), 1e-9);
}

TEST(Fleet, BudgetTotalsMatchClosedForm) {
  const Fleet fleet = Fleet::even(4, Workload::kCifar10);
  double expected_mwh = 0.0;
  for (const TraceEntry& entry : smartphone_traces()) {
    expected_mwh +=
        entry.cifar_mwh * static_cast<double>(entry.cifar_rounds);
  }
  EXPECT_NEAR(fleet.total_budget_wh(), expected_mwh / 1000.0, 1e-9);
}

TEST(Fleet, UniformFleetUsesOneDevice) {
  const Fleet fleet = Fleet::uniform(10, 2, Workload::kFemnist);
  for (std::size_t node = 0; node < 10; ++node) {
    EXPECT_EQ(fleet.device(node).profile.name, "OnePlus Nord 2 5G");
  }
}

TEST(Accountant, TracksTrainingAndBudget) {
  const Fleet fleet = Fleet::even(4, Workload::kCifar10);
  EnergyAccountant accountant(fleet, CommModel{}, 89834,
                              std::vector<std::size_t>{6, 6, 6, 6});
  const std::size_t tau0 = fleet.budget_rounds(0);
  EXPECT_EQ(accountant.remaining_budget(0), tau0);

  accountant.record_training(0);
  accountant.record_training(0);
  EXPECT_EQ(accountant.training_rounds_executed(0), 2u);
  EXPECT_EQ(accountant.remaining_budget(0), tau0 - 2);
  EXPECT_NEAR(accountant.node_training_mwh(0),
              2.0 * fleet.training_energy_mwh(0), 1e-12);
  EXPECT_EQ(accountant.training_rounds_executed(1), 0u);
}

TEST(Accountant, BudgetNeverGoesNegative) {
  const Fleet fleet = Fleet::uniform(1, 0, Workload::kCifar10);
  EnergyAccountant accountant(fleet, CommModel{}, 1000,
                              std::vector<std::size_t>{2});
  const std::size_t tau = fleet.budget_rounds(0);
  for (std::size_t i = 0; i < tau + 50; ++i) accountant.record_training(0);
  EXPECT_EQ(accountant.remaining_budget(0), 0u);
  EXPECT_FALSE(accountant.has_budget(0));
}

TEST(Accountant, CommEnergyScalesWithDegree) {
  const Fleet fleet = Fleet::even(2, Workload::kCifar10);
  EnergyAccountant accountant(fleet, CommModel{}, 89834,
                              std::vector<std::size_t>{3, 6});
  accountant.record_exchange(0);
  accountant.record_exchange(1);
  EXPECT_NEAR(accountant.node_comm_mwh(1), 2.0 * accountant.node_comm_mwh(0),
              1e-12);
}

TEST(Accountant, TotalsAggregateAcrossNodes) {
  const Fleet fleet = Fleet::even(4, Workload::kCifar10);
  EnergyAccountant accountant(fleet, CommModel{}, 89834,
                              std::vector<std::size_t>(4, 6));
  for (std::size_t node = 0; node < 4; ++node) {
    accountant.record_training(node);
    accountant.record_exchange(node);
  }
  double expected_train_mwh = 0.0;
  for (std::size_t node = 0; node < 4; ++node) {
    expected_train_mwh += fleet.training_energy_mwh(node);
  }
  EXPECT_NEAR(accountant.total_training_wh(), expected_train_mwh / 1000.0,
              1e-12);
  EXPECT_GT(accountant.total_comm_wh(), 0.0);
  EXPECT_NEAR(accountant.total_wh(),
              accountant.total_training_wh() + accountant.total_comm_wh(),
              1e-12);
}

TEST(Accountant, BillsCodecWireBytesPerParam) {
  // Regression for the once-hardcoded 4 bytes/param: a dense fp32, fp16
  // and int8 exchange of the same model must bill 4 / 2 / 1.125 bytes per
  // parameter respectively (int8 = 1 code byte + the amortized per-block
  // scale/offset header).
  const Fleet fleet = Fleet::even(1, Workload::kCifar10);
  const auto comm_wh_for = [&](quant::Codec codec) {
    EnergyAccountant accountant(fleet, quant::comm_model_for(codec), 89834,
                                std::vector<std::size_t>{6});
    accountant.record_exchange(0);
    return accountant.node_comm_mwh(0);
  };
  const double fp32 = comm_wh_for(quant::Codec::kIdentity);
  const double fp16 = comm_wh_for(quant::Codec::kFp16);
  const double int8 = comm_wh_for(quant::Codec::kInt8);
  EXPECT_GT(fp32, 0.0);
  EXPECT_NEAR(fp16 / fp32, 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(int8 / fp32, 1.125 / 4.0, 1e-12);
  // And fp32 still matches the default (paper) comm model bit-for-bit.
  EnergyAccountant baseline(fleet, CommModel{}, 89834,
                            std::vector<std::size_t>{6});
  baseline.record_exchange(0);
  EXPECT_DOUBLE_EQ(fp32, baseline.node_comm_mwh(0));
}

TEST(Accountant, SizeMismatchThrows) {
  const Fleet fleet = Fleet::even(4, Workload::kCifar10);
  EXPECT_THROW(EnergyAccountant(fleet, CommModel{}, 100,
                                std::vector<std::size_t>{6, 6}),
               std::invalid_argument);
}

TEST(Batteries, RealisticPackSizes) {
  // Sanity: capacities between 15 and 25 Wh (3900-6500 mAh at ~3.85 V).
  for (const TraceEntry& entry : smartphone_traces()) {
    EXPECT_GT(entry.profile.battery_wh, 15.0) << entry.profile.name;
    EXPECT_LT(entry.profile.battery_wh, 25.0) << entry.profile.name;
  }
}

}  // namespace
}  // namespace skiptrain::energy
