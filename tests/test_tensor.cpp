#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace skiptrain::tensor {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(2), 4u);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, TwoDimensionalAccess) {
  Tensor t({2, 3});
  t.at(0, 0) = 1.0f;
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(5), 5.0f);
}

TEST(Tensor, RowView) {
  Tensor t({3, 4});
  for (std::size_t i = 0; i < 12; ++i) t.at(i) = static_cast<float>(i);
  const auto row1 = t.row(1);
  EXPECT_EQ(row1.size(), 4u);
  EXPECT_EQ(row1[0], 4.0f);
  EXPECT_EQ(row1[3], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at(7) = 3.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at(7), 3.0f);
}

TEST(Tensor, ReshapeMismatchThrows) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, FillSetsEveryElement) {
  Tensor t({4, 4});
  t.fill(2.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 2.5f);
  t.zero();
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(ShapeUtils, NumelAndToString) {
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Ops, Axpy) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y{10.0f, 20.0f, 30.0f};
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[1], 24.0f);
  EXPECT_EQ(y[2], 36.0f);
}

TEST(Ops, ScaleCopySubtract) {
  std::vector<float> x{2.0f, 4.0f};
  scale(x, 0.5f);
  EXPECT_EQ(x[0], 1.0f);
  EXPECT_EQ(x[1], 2.0f);

  std::vector<float> dst(2);
  copy(x, dst);
  EXPECT_EQ(dst[1], 2.0f);

  std::vector<float> a{5.0f, 7.0f}, b{1.0f, 2.0f}, out(2);
  subtract(a, b, out);
  EXPECT_EQ(out[0], 4.0f);
  EXPECT_EQ(out[1], 5.0f);
}

TEST(Ops, DotAndNorms) {
  std::vector<float> a{1.0f, 2.0f, 2.0f};
  std::vector<float> b{3.0f, 0.0f, 4.0f};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(squared_norm(a), 9.0);
  EXPECT_DOUBLE_EQ(l2_distance(a, a), 0.0);
  const std::vector<float> zero{0.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(l2_distance(a, zero), 3.0);
}

// --- GEMM correctness against a reference implementation -------------------

void reference_gemm(std::size_t m, std::size_t k, std::size_t n,
                    const std::vector<float>& a, const std::vector<float>& b,
                    std::vector<float>& c, bool trans_a, bool trans_b,
                    float beta) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * n + j] = beta * c[i * n + j] + static_cast<float>(acc);
    }
  }
}

class GemmSizes : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmSizes, AllVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 1000 + k * 100 + n);
  std::vector<float> a(std::max(m * k, k * m)), b(std::max(k * n, n * k));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);

  // gemm_nn
  std::vector<float> c(m * n), ref(m * n);
  gemm_nn(m, k, n, a, b, c);
  reference_gemm(m, k, n, a, b, ref, false, false, 0.0f);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);

  // gemm_nt (b as [n, k])
  std::fill(c.begin(), c.end(), 0.0f);
  std::fill(ref.begin(), ref.end(), 0.0f);
  gemm_nt(m, k, n, a, b, c);
  reference_gemm(m, k, n, a, b, ref, false, true, 0.0f);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);

  // gemm_tn (a as [k, m])
  std::fill(c.begin(), c.end(), 0.0f);
  std::fill(ref.begin(), ref.end(), 0.0f);
  gemm_tn(m, k, n, a, b, c);
  reference_gemm(m, k, n, a, b, ref, true, false, 0.0f);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9)));

TEST(Gemm, BetaZeroNeverReadsC) {
  // BLAS semantics: with beta == 0, C is write-only — an uninitialized or
  // NaN-poisoned output buffer must not poison the result. Regression for
  // the gemm_nt formulation that scaled a read of C by beta.
  const std::size_t m = 3, k = 4, n = 2;
  util::Rng rng(77);
  std::vector<float> a(m * k), b(n * k), ref(m * n);
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  reference_gemm(m, k, n, a, b, ref, false, true, 0.0f);

  std::vector<float> c(m * n, std::numeric_limits<float>::quiet_NaN());
  gemm_nt(m, k, n, a, b, c, /*beta=*/0.0f);
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_FALSE(std::isnan(c[i])) << "NaN leaked from C at " << i;
    EXPECT_NEAR(c[i], ref[i], 1e-3f);
  }

  // gemm_nn and gemm_tn share the contract.
  std::vector<float> b_nn(k * n);
  rng.fill_normal(b_nn, 0.0f, 1.0f);
  std::fill(c.begin(), c.end(), std::numeric_limits<float>::quiet_NaN());
  gemm_nn(m, k, n, a, b_nn, c, /*beta=*/0.0f);
  for (const float v : c) ASSERT_FALSE(std::isnan(v));

  std::vector<float> a_tn(k * m);
  rng.fill_normal(a_tn, 0.0f, 1.0f);
  std::fill(c.begin(), c.end(), std::numeric_limits<float>::quiet_NaN());
  gemm_tn(m, k, n, a_tn, b_nn, c, /*beta=*/0.0f);
  for (const float v : c) ASSERT_FALSE(std::isnan(v));
}

TEST(Gemm, BetaAccumulates) {
  const std::size_t m = 2, k = 2, n = 2;
  std::vector<float> a{1.0f, 0.0f, 0.0f, 1.0f};  // identity
  std::vector<float> b{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> c{10.0f, 10.0f, 10.0f, 10.0f};
  gemm_nn(m, k, n, a, b, c, /*beta=*/1.0f);
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[3], 14.0f);
}

TEST(Softmax, RowsSumToOne) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
  softmax_rows(2, 3, x);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      const float v = x[r * 3 + c];
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  // Larger logits get larger probabilities.
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
}

TEST(Softmax, NumericallyStableWithHugeLogits) {
  std::vector<float> x{1000.0f, 1001.0f, 999.0f};
  softmax_rows(1, 3, x);
  float sum = 0.0f;
  for (const float v : x) {
    EXPECT_FALSE(std::isnan(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Argmax, FindsFirstMaximum) {
  const std::vector<float> x{1.0f, 5.0f, 3.0f, 5.0f};
  EXPECT_EQ(argmax(x), 1u);
  const std::vector<float> single{2.0f};
  EXPECT_EQ(argmax(single), 0u);
}

}  // namespace
}  // namespace skiptrain::tensor
