// Finite-difference verification of every backward pass. These tests are
// the correctness oracle for the hand-written autodiff.
#include <gtest/gtest.h>

#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/groupnorm.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"
#include "nn/pool.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {
namespace {

struct GradCase {
  std::string name;
  Sequential model;
  tensor::Shape input_shape;
  std::size_t classes;
};

Sequential build_linear_relu() {
  Sequential m;
  m.emplace<Linear>(6, 8);
  m.emplace<ReLU>();
  m.emplace<Linear>(8, 4);
  return m;
}

Sequential build_tanh_net() {
  Sequential m;
  m.emplace<Linear>(5, 7);
  m.emplace<Tanh>();
  m.emplace<Linear>(7, 3);
  return m;
}

// Smooth (tanh) variants isolate the layer under test from the
// finite-difference kink problem: perturbing a weight by eps can flip a
// ReLU sign or a max-pool argmax, making the numeric derivative wrong at
// that point even though the analytic gradient is correct. Kink-bearing
// nets are tested separately with a small failure allowance.
Sequential build_conv_net() {
  Sequential m;
  m.emplace<Conv2d>(2, 3, 3, 1, 1);
  m.emplace<Tanh>();
  m.emplace<Flatten>();
  m.emplace<Linear>(3 * 6 * 6, 4);
  return m;
}

Sequential build_relu_conv_net() {
  Sequential m;
  m.emplace<Conv2d>(2, 3, 3, 1, 1);
  m.emplace<ReLU>();
  m.emplace<Flatten>();
  m.emplace<Linear>(3 * 6 * 6, 4);
  return m;
}

Sequential build_strided_conv_net() {
  Sequential m;
  m.emplace<Conv2d>(1, 2, 3, 2, 1);
  m.emplace<Tanh>();
  m.emplace<Flatten>();
  m.emplace<Linear>(2 * 4 * 4, 3);
  return m;
}

Sequential build_pool_net() {
  Sequential m;
  m.emplace<Conv2d>(1, 2, 3, 1, 1);
  m.emplace<Tanh>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(2 * 3 * 3, 3);
  return m;
}

Sequential build_groupnorm_net() {
  Sequential m;
  m.emplace<Conv2d>(1, 4, 3, 1, 1);
  m.emplace<GroupNorm>(2, 4);
  m.emplace<Tanh>();
  m.emplace<Flatten>();
  m.emplace<Linear>(4 * 4 * 4, 3);
  return m;
}

GradCheckResult run_case(Sequential& model, const tensor::Shape& input_shape,
                         std::size_t classes, std::uint64_t seed,
                         std::size_t max_params = 0) {
  util::Rng rng(seed);
  initialize(model, rng);
  tensor::Tensor input(input_shape);
  rng.fill_normal(input.data(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels(input_shape[0]);
  for (auto& label : labels) {
    label = static_cast<std::int32_t>(rng.uniform_int(classes));
  }
  return gradient_check(model, input, labels, /*eps=*/1e-2, max_params);
}

TEST(GradCheck, LinearReluNetwork) {
  Sequential model = build_linear_relu();
  const auto result = run_case(model, {4, 6}, 4, 11);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
  EXPECT_GT(result.checked, 50u);
}

TEST(GradCheck, TanhNetwork) {
  Sequential model = build_tanh_net();
  const auto result = run_case(model, {3, 5}, 3, 12);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, ConvNetworkSamePadding) {
  Sequential model = build_conv_net();
  const auto result = run_case(model, {2, 2, 6, 6}, 4, 13);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, ReluConvNetworkAllowsKinkCrossings) {
  // eps-perturbations can flip ReLU signs; a handful of numeric mismatches
  // are expected and are NOT analytic-gradient bugs (see the tanh variant
  // above, which must be exact).
  Sequential model = build_relu_conv_net();
  const auto result = run_case(model, {2, 2, 6, 6}, 4, 13);
  EXPECT_LE(result.failures, result.checked / 25)
      << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, StridedConvNetwork) {
  Sequential model = build_strided_conv_net();
  const auto result = run_case(model, {2, 1, 8, 8}, 3, 14);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, MaxPoolNetwork) {
  // Max-pool argmax can flip under eps-perturbation (a kink); allow a
  // small number of numeric mismatches.
  Sequential model = build_pool_net();
  const auto result = run_case(model, {2, 1, 6, 6}, 3, 15);
  EXPECT_LE(result.failures, result.checked / 25)
      << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, GroupNormNetwork) {
  Sequential model = build_groupnorm_net();
  const auto result = run_case(model, {2, 1, 4, 4}, 3, 16);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, SoftmaxRegression) {
  Sequential model = make_softmax_regression(8, 5);
  const auto result = run_case(model, {6, 8}, 5, 17);
  EXPECT_EQ(result.failures, 0u) << "max_abs=" << result.max_abs_error;
}

TEST(GradCheck, PaperCifarCnnSubsampled) {
  // The full GN-LeNet has 89834 parameters; probe a strided subset of 200.
  Sequential full = make_cifar_cnn();
  util::Rng rng(19);
  initialize(full, rng);
  tensor::Tensor input({1, 3, 32, 32});
  rng.fill_normal(input.data(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels{3};
  const auto full_result =
      gradient_check(full, input, labels, 1e-2, /*max_params=*/200);
  // ReLU + max-pool kinks: tolerate a small share of numeric mismatches
  // (the smooth per-layer tests above must be exact).
  EXPECT_LE(full_result.failures, full_result.checked / 5)
      << "max_abs=" << full_result.max_abs_error
      << " failures=" << full_result.failures << "/" << full_result.checked;
}

TEST(GradCheck, MultiBatchGradientsAverage) {
  // Gradient wrt a batch of B identical samples equals the single-sample
  // gradient (cross-entropy averages over the batch).
  Sequential model_single = make_mlp(4, {6}, 3);
  util::Rng rng(21);
  initialize(model_single, rng);
  Sequential model_batch = model_single.clone();

  tensor::Tensor one({1, 4});
  rng.fill_normal(one.data(), 0.0f, 1.0f);
  tensor::Tensor batch({5, 4});
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t i = 0; i < 4; ++i) batch.at(b, i) = one.at(0, i);
  }
  std::vector<std::int32_t> label_one{1};
  std::vector<std::int32_t> label_batch(5, 1);

  const auto grads_of = [](Sequential& model, const tensor::Tensor& input,
                           std::span<const std::int32_t> labels) {
    model.zero_grad();
    const tensor::Tensor& logits = model.forward(input);
    tensor::Tensor grad_logits(logits.shape());
    softmax_cross_entropy(logits, labels, grad_logits);
    model.backward(input, grad_logits);
    std::vector<float> grads(model.num_parameters());
    model.get_gradients(grads);
    return grads;
  };

  const auto g1 = grads_of(model_single, one, label_one);
  const auto g5 = grads_of(model_batch, batch, label_batch);
  ASSERT_EQ(g1.size(), g5.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g5[i], 1e-5f);
  }
}

}  // namespace
}  // namespace skiptrain::nn
