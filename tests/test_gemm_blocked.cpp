// Bit-identity of the blocked GEMM kernels against the retained seed
// loops (gemm_*_ref). The contract is exact: for every input — including
// degenerate dims, non-square panels, every beta case, zero-heavy A (the
// skip-zero branch), and NaN-poisoned C with beta == 0 — the blocked
// kernels must produce bitwise identical C.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace skiptrain::tensor {
namespace {

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want, const char* what,
                          std::size_t m, std::size_t k, std::size_t n,
                          float beta) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " m=" << m << " k=" << k << " n=" << n << " beta=" << beta
        << " at " << i << ": " << got[i] << " vs " << want[i];
  }
}

/// Runs all three variants at (m, k, n) x beta in {0, 1, 0.5} and compares
/// blocked vs reference bitwise. `sparsify` zeroes a fraction of A to
/// exercise the skip-zero-multiplier branch.
void check_shape(std::size_t m, std::size_t k, std::size_t n,
                 std::uint64_t seed, bool sparsify) {
  util::Rng rng(seed);
  std::vector<float> a(m * k);  // same extent whichever layout reads it
  std::vector<float> b(k * n);
  if (!a.empty()) rng.fill_normal(a, 0.0f, 1.0f);
  if (!b.empty()) rng.fill_normal(b, 0.0f, 1.0f);
  if (sparsify) {
    for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  }
  std::vector<float> c_init(m * n);
  if (!c_init.empty()) rng.fill_normal(c_init, 0.0f, 1.0f);

  for (const float beta : {0.0f, 1.0f, 0.5f}) {
    {
      std::vector<float> c = c_init, ref = c_init;
      gemm_nn(m, k, n, a, b, c, beta);
      gemm_nn_ref(m, k, n, a, b, ref, beta);
      expect_bitwise_equal(c, ref, "gemm_nn", m, k, n, beta);
    }
    {
      std::vector<float> c = c_init, ref = c_init;
      gemm_nt(m, k, n, a, b, c, beta);
      gemm_nt_ref(m, k, n, a, b, ref, beta);
      expect_bitwise_equal(c, ref, "gemm_nt", m, k, n, beta);
    }
    {
      std::vector<float> c = c_init, ref = c_init;
      gemm_tn(m, k, n, a, b, c, beta);
      gemm_tn_ref(m, k, n, a, b, ref, beta);
      expect_bitwise_equal(c, ref, "gemm_tn", m, k, n, beta);
    }
  }
}

TEST(GemmBlocked, DegenerateAndUnitDims) {
  for (const auto& [m, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{0, 0, 0},
        {0, 5, 7},
        {5, 0, 7},
        {5, 7, 0},
        {1, 1, 1},
        {1, 257, 1},
        {1, 64, 300},
        {300, 64, 1},
        {257, 1, 33}}) {
    check_shape(m, k, n, 1000 + m * 31 + k * 7 + n, false);
  }
}

TEST(GemmBlocked, NonSquarePanelsCrossBlockBoundaries) {
  // Shapes straddling the microkernel tile (4x8) and the cache blocks
  // (kc/mc/nc from gemm_tuning), including off-by-one edges.
  const GemmTuning& tun = gemm_tuning();
  check_shape(3, 5, 17, 1, false);
  check_shape(4, 16, 16, 2, false);
  check_shape(5, 33, 31, 3, false);
  check_shape(64, 100, 48, 4, false);
  check_shape(70, tun.kc + 1, 40, 5, false);
  check_shape(tun.mc + 3, 65, 19, 6, false);
  check_shape(40, 120, tun.nc + 9, 7, false);
  check_shape(129, 257, 65, 8, false);
}

TEST(GemmBlocked, ZeroHeavyAPreservesSkipBranch) {
  check_shape(48, 96, 40, 11, true);
  check_shape(33, tensor::gemm_tuning().kc + 5, 37, 12, true);
}

TEST(GemmBlocked, LongAccumulationFuzz) {
  // Many k steps stress the cross-block accumulator carry: any deviation
  // from the seed's per-element op order shows up as a bit flip here.
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng shape_rng(500 + trial);
    const auto m = static_cast<std::size_t>(1 + shape_rng.uniform_int(90));
    const auto k = static_cast<std::size_t>(1 + shape_rng.uniform_int(700));
    const auto n = static_cast<std::size_t>(1 + shape_rng.uniform_int(90));
    check_shape(m, k, n, 9000 + trial, trial % 2 == 1);
  }
}

TEST(GemmBlocked, BetaZeroNeverReadsCAnyVariantAnyPath) {
  // NaN-C regression for all three variants, on shapes that take the
  // blocked path AND shapes that take the reference fallback.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const auto& [m, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{3, 4, 2},
        {48, 128, 40}}) {
    util::Rng rng(m + k + n);
    std::vector<float> a(m * k), b(k * n);
    rng.fill_normal(a, 0.0f, 1.0f);
    rng.fill_normal(b, 0.0f, 1.0f);
    std::vector<float> c(m * n, nan);
    gemm_nn(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_nn";
    std::fill(c.begin(), c.end(), nan);
    gemm_nt(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_nt";
    std::fill(c.begin(), c.end(), nan);
    gemm_tn(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_tn";
    // The retained references share the write-only-C contract.
    std::fill(c.begin(), c.end(), nan);
    gemm_nn_ref(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_nn_ref";
    std::fill(c.begin(), c.end(), nan);
    gemm_nt_ref(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_nt_ref";
    std::fill(c.begin(), c.end(), nan);
    gemm_tn_ref(m, k, n, a, b, c, 0.0f);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << "gemm_tn_ref";
  }
}

TEST(GemmTuning, DerivedBlocksAreSane) {
  const GemmTuning& tun = gemm_tuning();
  EXPECT_GE(tun.kc, 64u);
  EXPECT_LE(tun.kc, 512u);
  EXPECT_GE(tun.mc, 4u);
  EXPECT_LE(tun.mc, 1024u);
  EXPECT_EQ(tun.nc % 16, 0u);
  EXPECT_GT(tun.l1d_bytes, 0u);
  EXPECT_GT(tun.l2_bytes, tun.l1d_bytes);
}

}  // namespace
}  // namespace skiptrain::tensor
