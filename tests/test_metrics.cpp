#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/synthetic.hpp"
#include "metrics/consensus.hpp"
#include "metrics/evaluator.hpp"
#include "metrics/recorder.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/model_zoo.hpp"

namespace skiptrain::metrics {
namespace {

data::Dataset tiny_dataset() {
  // 4 samples in 2D; class = sign of feature 0.
  data::Dataset dataset;
  dataset.features = tensor::Tensor({4, 2});
  dataset.labels = {0, 0, 1, 1};
  dataset.num_classes = 2;
  dataset.features.at(0, 0) = -2.0f;
  dataset.features.at(1, 0) = -1.0f;
  dataset.features.at(2, 0) = 1.0f;
  dataset.features.at(3, 0) = 2.0f;
  return dataset;
}

/// A linear model that predicts class 1 iff feature 0 > 0.
nn::Sequential perfect_model() {
  nn::Sequential model = nn::make_softmax_regression(2, 2);
  // logits = W x + b; W[0] = (-1, 0), W[1] = (1, 0).
  auto* linear = dynamic_cast<nn::Linear*>(&model.layer(0));
  linear->weights()[0] = -1.0f;
  linear->weights()[1] = 0.0f;
  linear->weights()[2] = 1.0f;
  linear->weights()[3] = 0.0f;
  return model;
}

TEST(Evaluator, PerfectModelScoresOne) {
  const data::Dataset dataset = tiny_dataset();
  const Evaluator evaluator(&dataset);
  nn::Sequential model = perfect_model();
  const EvalResult result = evaluator.evaluate(model);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_LT(result.loss, 0.7);
}

TEST(Evaluator, InvertedModelScoresZero) {
  const data::Dataset dataset = tiny_dataset();
  const Evaluator evaluator(&dataset);
  nn::Sequential model = perfect_model();
  // Flip the weights: always predicts the wrong class.
  auto params = model.parameters_flat();
  for (auto& p : params) p = -p;
  model.set_parameters(params);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(model).accuracy, 0.0);
}

TEST(Evaluator, MaxSamplesCapsSweep) {
  data::CifarSynConfig config;
  config.nodes = 2;
  config.samples_per_node = 10;
  config.test_pool = 400;
  const data::FederatedData data = data::make_cifar_synthetic(config);
  const Evaluator capped(&data.test, 50);
  EXPECT_EQ(capped.samples_used(), 50u);
  const Evaluator full(&data.test, 0);
  EXPECT_EQ(full.samples_used(), data.test.size());
}

TEST(Evaluator, BatchSizeDoesNotChangeResult) {
  data::CifarSynConfig config;
  config.nodes = 2;
  config.samples_per_node = 10;
  config.test_pool = 300;
  const data::FederatedData data = data::make_cifar_synthetic(config);
  nn::Sequential model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(5);
  nn::initialize(model, rng);

  const Evaluator small_batches(&data.test, 0, 7);
  const Evaluator big_batches(&data.test, 0, 128);
  EXPECT_DOUBLE_EQ(small_batches.evaluate(model).accuracy,
                   big_batches.evaluate(model).accuracy);
  EXPECT_NEAR(small_batches.evaluate(model).loss,
              big_batches.evaluate(model).loss, 1e-9);
}

TEST(Evaluator, EvaluateAverageEqualsAveragedModel) {
  const data::Dataset dataset = tiny_dataset();
  const Evaluator evaluator(&dataset);
  nn::Sequential prototype = nn::make_softmax_regression(2, 2);

  // Two opposite models; their average is the zero model (50% accuracy
  // territory; argmax ties resolve to class 0 -> accuracy 0.5 here).
  nn::Sequential a = perfect_model();
  std::vector<std::vector<float>> params;
  params.push_back(a.parameters_flat());
  auto negated = a.parameters_flat();
  for (auto& p : negated) p = -p;
  params.push_back(negated);

  const EvalResult averaged = evaluator.evaluate_average(prototype, params);
  EXPECT_DOUBLE_EQ(averaged.accuracy, 0.5);

  EXPECT_THROW(evaluator.evaluate_average(
                   prototype, std::span<const std::vector<float>>{}),
               std::invalid_argument);
}

TEST(Evaluator, FleetSummary) {
  const data::Dataset dataset = tiny_dataset();
  const Evaluator evaluator(&dataset);
  nn::Sequential good = perfect_model();
  nn::Sequential bad = perfect_model();
  auto params = bad.parameters_flat();
  for (auto& p : params) p = -p;
  bad.set_parameters(params);

  std::vector<nn::Sequential*> models{&good, &bad};
  const auto result = evaluator.evaluate_fleet(models);
  EXPECT_DOUBLE_EQ(result.accuracy.mean, 0.5);
  EXPECT_DOUBLE_EQ(result.per_node[0], 1.0);
  EXPECT_DOUBLE_EQ(result.per_node[1], 0.0);
  EXPECT_NEAR(result.accuracy.stddev, 0.5, 1e-12);
}

TEST(Evaluator, EmptyDatasetThrows) {
  data::Dataset no_samples;
  no_samples.num_classes = 2;
  EXPECT_THROW(
      {
        const Evaluator evaluator(&no_samples);
        (void)evaluator;
      },
      std::invalid_argument);
}

TEST(Consensus, ZeroForIdenticalModels) {
  std::vector<std::vector<float>> params(4, std::vector<float>{1.0f, 2.0f});
  EXPECT_DOUBLE_EQ(consensus_distance(params), 0.0);
  EXPECT_DOUBLE_EQ(max_pairwise_distance(params), 0.0);
}

TEST(Consensus, KnownConfiguration) {
  // Two models at ±1 on one axis: mean is 0, each is distance 1 from it.
  std::vector<std::vector<float>> params{{1.0f}, {-1.0f}};
  EXPECT_DOUBLE_EQ(consensus_distance(params), 1.0);
  EXPECT_DOUBLE_EQ(max_pairwise_distance(params), 2.0);
}

TEST(Consensus, RaggedInputThrows) {
  std::vector<std::vector<float>> params{{1.0f, 2.0f}, {1.0f}};
  EXPECT_THROW((void)consensus_distance(params), std::invalid_argument);
}

TEST(Recorder, BestAndLastAccessors) {
  Recorder recorder("exp");
  EXPECT_TRUE(recorder.empty());
  RoundRecord r1;
  r1.round = 8;
  r1.mean_accuracy = 0.5;
  r1.train_energy_wh = 10.0;
  recorder.add(r1);
  RoundRecord r2;
  r2.round = 16;
  r2.mean_accuracy = 0.4;  // dips
  r2.train_energy_wh = 20.0;
  recorder.add(r2);

  EXPECT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.last().round, 16u);
  EXPECT_DOUBLE_EQ(recorder.best_mean_accuracy(), 0.5);
}

TEST(Recorder, RecordAtEnergyFindsFirstCrossing) {
  Recorder recorder("exp");
  for (int i = 1; i <= 5; ++i) {
    RoundRecord r;
    r.round = static_cast<std::size_t>(i);
    r.train_energy_wh = 10.0 * i;
    r.mean_accuracy = 0.1 * i;
    recorder.add(r);
  }
  const auto at_25 = recorder.record_at_energy(25.0);
  ASSERT_TRUE(at_25.has_value());
  EXPECT_EQ(at_25->round, 3u);  // first record with energy >= 25

  EXPECT_FALSE(recorder.record_at_energy(1000.0).has_value());
}

TEST(Recorder, CsvExportRoundTrips) {
  const std::string path = ::testing::TempDir() + "recorder_test.csv";
  Recorder recorder("exp");
  RoundRecord r;
  r.round = 4;
  r.training_round = true;
  r.mean_accuracy = 0.625;
  r.nodes_trained = 32;
  recorder.add(r);
  recorder.write_csv(path);

  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("mean_accuracy"), std::string::npos);
  EXPECT_NE(row.find("0.625"), std::string::npos);
  EXPECT_NE(row.find("32"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Recorder, RenderSeriesShowsKindAndRows) {
  Recorder recorder("my-experiment");
  RoundRecord train_record;
  train_record.round = 1;
  train_record.training_round = true;
  recorder.add(train_record);
  RoundRecord sync_record;
  sync_record.round = 2;
  sync_record.training_round = false;
  recorder.add(sync_record);

  const std::string rendered = recorder.render_series();
  EXPECT_NE(rendered.find("my-experiment"), std::string::npos);
  EXPECT_NE(rendered.find("train"), std::string::npos);
  EXPECT_NE(rendered.find("sync"), std::string::npos);
}

}  // namespace
}  // namespace skiptrain::metrics
