// Bit-identity of the vectorized codec kernels against the scalar
// reference paths: exhaustive over all 2^16 halves for fp16 decode (and
// encode of every exactly-representable half value plus directed rounding
// neighborhoods and random bit patterns), fuzzed for the int8 block
// codecs including constant and denormal-heavy rows.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "quant/codec.hpp"
#include "quant/kernels.hpp"
#include "util/rng.hpp"

namespace skiptrain::quant {
namespace {

TEST(Fp16Kernels, DecodeExhaustiveAllHalves) {
  std::vector<std::uint16_t> halves(1u << 16);
  for (std::size_t i = 0; i < halves.size(); ++i) {
    halves[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> batch(halves.size()), scalar(halves.size());
  fp16_decode(halves.data(), batch);
  fp16_decode_scalar(halves.data(), scalar);
  for (std::size_t i = 0; i < halves.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(batch[i]),
              std::bit_cast<std::uint32_t>(scalar[i]))
        << "half 0x" << std::hex << halves[i];
  }
}

void expect_encode_matches(const std::vector<float>& values,
                           const char* what) {
  std::vector<std::uint16_t> batch(values.size()), scalar(values.size());
  fp16_encode(values, batch.data());
  fp16_encode_scalar(values, scalar.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(batch[i], scalar[i])
        << what << ": float bits 0x" << std::hex
        << std::bit_cast<std::uint32_t>(values[i]);
  }
  fp16_encode_wire(values, batch.data());
  fp16_encode_wire_scalar(values, scalar.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(batch[i], scalar[i])
        << what << " (wire): float bits 0x" << std::hex
        << std::bit_cast<std::uint32_t>(values[i]);
  }
}

TEST(Fp16Kernels, EncodeEveryHalfValueAndRoundingNeighborhoods) {
  // Every float that is exactly a half value, and its ±1-ulp float
  // neighbors — this walks every rounding boundary region, including
  // subnormals, both zeros, Inf and NaN.
  std::vector<float> values;
  values.reserve(3u << 16);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    const float f = fp16_to_float(static_cast<std::uint16_t>(h));
    values.push_back(f);
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
    values.push_back(std::bit_cast<float>(bits + 1));
    if ((bits & 0x7fffffffu) != 0) {
      values.push_back(std::bit_cast<float>(bits - 1));
    }
  }
  expect_encode_matches(values, "half-neighborhood");
}

TEST(Fp16Kernels, EncodeExactMidpointsRoundToEven) {
  // Exact ties between adjacent halves must round to even mantissas in
  // both paths. Construct midpoints from consecutive normal halves.
  std::vector<float> values;
  for (std::uint32_t h = 0x0400; h < 0x7bff; ++h) {  // positive normals
    const double a = fp16_to_float(static_cast<std::uint16_t>(h));
    const double b = fp16_to_float(static_cast<std::uint16_t>(h + 1));
    values.push_back(static_cast<float>((a + b) / 2.0));
  }
  expect_encode_matches(values, "midpoint");
}

TEST(Fp16Kernels, EncodeRandomBitPatterns) {
  util::Rng rng(99);
  std::vector<float> values(1u << 20);
  for (auto& v : values) {
    v = std::bit_cast<float>(static_cast<std::uint32_t>(rng.next_u64()));
  }
  expect_encode_matches(values, "random-bits");
}

// --- int8 -------------------------------------------------------------------

void expect_int8_matches(const std::vector<float>& row, std::uint64_t stream,
                         const char* what) {
  const std::size_t blocks =
      (row.size() + kInt8BlockValues - 1) / kInt8BlockValues;
  std::vector<std::uint8_t> codes_v(row.size()), codes_s(row.size());
  std::vector<float> lo_v(blocks), lo_s(blocks), sc_v(blocks), sc_s(blocks);

  int8_encode(row, codes_v.data(), lo_v.data(), sc_v.data());
  int8_encode_scalar(row, codes_s.data(), lo_s.data(), sc_s.data());
  ASSERT_EQ(codes_v, codes_s) << what << " nearest codes";
  for (std::size_t b = 0; b < blocks; ++b) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(lo_v[b]),
              std::bit_cast<std::uint32_t>(lo_s[b]))
        << what << " lo block " << b;
    ASSERT_EQ(std::bit_cast<std::uint32_t>(sc_v[b]),
              std::bit_cast<std::uint32_t>(sc_s[b]))
        << what << " scale block " << b;
  }
  std::vector<float> dec_v(row.size()), dec_s(row.size());
  int8_decode(row.size(), codes_v.data(), lo_v.data(), sc_v.data(),
              dec_v.data());
  int8_decode_scalar(row.size(), codes_s.data(), lo_s.data(), sc_s.data(),
                     dec_s.data());
  for (std::size_t i = 0; i < row.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(dec_v[i]),
              std::bit_cast<std::uint32_t>(dec_s[i]))
        << what << " nearest decode at " << i;
  }

  int8_encode_dithered(row, stream, codes_v.data(), lo_v.data(), sc_v.data());
  int8_encode_dithered_scalar(row, stream, codes_s.data(), lo_s.data(),
                              sc_s.data());
  ASSERT_EQ(codes_v, codes_s) << what << " dithered codes";
  int8_decode_dithered(row.size(), codes_v.data(), lo_v.data(), sc_v.data(),
                       stream, dec_v.data());
  int8_decode_dithered_scalar(row.size(), codes_s.data(), lo_s.data(),
                              sc_s.data(), stream, dec_s.data());
  for (std::size_t i = 0; i < row.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(dec_v[i]),
              std::bit_cast<std::uint32_t>(dec_s[i]))
        << what << " dithered decode at " << i;
  }
}

TEST(Int8Kernels, FuzzedRowsMatchScalar) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 1 + rng.uniform_int(4 * kInt8BlockValues + 3);
    std::vector<float> row(dim);
    rng.fill_normal(row, 0.0f, 2.0f);
    expect_int8_matches(row, dither_stream(42, trial), "fuzz");
  }
}

TEST(Int8Kernels, ConstantAndNearConstantBlocks) {
  std::vector<float> row(kInt8BlockValues * 2 + 5, 3.25f);
  expect_int8_matches(row, dither_stream(1, 1), "constant");
  row.assign(kInt8BlockValues, 0.0f);
  expect_int8_matches(row, dither_stream(1, 2), "zero");
  row.assign(kInt8BlockValues + 1, -7.5f);
  row.back() = -7.5f + 1e-7f;  // scale denormal-small
  expect_int8_matches(row, dither_stream(1, 3), "near-constant");
}

TEST(Int8Kernels, DenormalHeavyRows) {
  util::Rng rng(13);
  std::vector<float> row(3 * kInt8BlockValues);
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (std::size_t i = 0; i < row.size(); ++i) {
    const auto scale = static_cast<float>(rng.uniform_int(2000));
    row[i] = denorm * scale * (rng.uniform() < 0.5 ? -1.0f : 1.0f);
  }
  expect_int8_matches(row, dither_stream(5, 9), "denormal");
  // Mixed denormal + normal magnitudes across one block.
  for (std::size_t i = 0; i < row.size(); i += 3) {
    row[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  expect_int8_matches(row, dither_stream(5, 10), "denormal-mixed");
}

TEST(Int8Kernels, InfiniteRangeAndNaNRowsStayDefinedAndMatchScalar) {
  // A block spanning ±huge overflows hi - lo to Inf (inv = 0), and a NaN
  // element inside an otherwise-finite block must not reach an undefined
  // float->int conversion; on x86 the scalar lroundf clamps all of these
  // to code 0, which the vectorized path replicates.
  std::vector<float> row(kInt8BlockValues, 1.0f);
  row[3] = 3.0e38f;
  row[9] = -3.0e38f;
  expect_int8_matches(row, dither_stream(2, 1), "inf-range");

  util::Rng rng(17);
  rng.fill_normal(row, 0.0f, 1.0f);
  row[kInt8BlockValues / 2] = std::numeric_limits<float>::quiet_NaN();
  expect_int8_matches(row, dither_stream(2, 2), "nan-element");
}

TEST(Int8Kernels, SingleElementAndPartialTrailingBlocks) {
  util::Rng rng(21);
  for (const std::size_t dim :
       {std::size_t{1}, std::size_t{2}, kInt8BlockValues - 1,
        kInt8BlockValues, kInt8BlockValues + 1, 3 * kInt8BlockValues - 1}) {
    std::vector<float> row(dim);
    rng.fill_normal(row, -1.0f, 4.0f);
    expect_int8_matches(row, dither_stream(77, dim), "partial-block");
  }
}

TEST(CodecIntegration, RowCodecsUseBitIdenticalKernels) {
  // End-to-end: the RowCodec interface (now on the batch kernels) must
  // reproduce what the scalar reference paths produce.
  util::Rng rng(31);
  std::vector<float> row(2 * kInt8BlockValues + 17);
  rng.fill_normal(row, 0.0f, 1.0f);

  const auto fp16 = make_codec(Codec::kFp16);
  QuantizedRow wire;
  fp16->encode(row, wire);
  std::vector<std::uint16_t> expect_half(row.size());
  fp16_encode_wire_scalar(row, expect_half.data());
  EXPECT_EQ(wire.half, expect_half);
  std::vector<float> decoded(row.size()), expect_dec(row.size());
  fp16->decode(wire, decoded);
  fp16_decode_scalar(wire.half.data(), expect_dec);
  for (std::size_t i = 0; i < row.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(decoded[i]),
              std::bit_cast<std::uint32_t>(expect_dec[i]));
  }

  const auto int8d = make_codec(Codec::kInt8Dithered, 42);
  int8d->begin_round(3);
  int8d->encode(row, wire);
  std::vector<std::uint8_t> expect_codes(row.size());
  std::vector<float> lo(wire.num_blocks()), scale(wire.num_blocks());
  int8_encode_dithered_scalar(row, dither_stream(42, 3), expect_codes.data(),
                              lo.data(), scale.data());
  EXPECT_EQ(wire.codes, expect_codes);
  EXPECT_EQ(wire.round, 3u);
}

}  // namespace
}  // namespace skiptrain::quant
