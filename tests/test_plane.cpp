// ParameterPlane subsystem: layout round-trips, arena aliasing, and golden
// bit-exactness of the refactored engine against the pre-refactor
// scattered-row reference path (dense and sparse-k, 1 vs N threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/compression.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/model_zoo.hpp"
#include "plane/layout.hpp"
#include "plane/plane.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain {
namespace {

// ---------------------------------------------------------------------------
// ParameterLayout
// ---------------------------------------------------------------------------

TEST(ParameterLayout, MatchesLayerParameterCounts) {
  const nn::Sequential model = nn::make_mlp(12, {8, 6}, 4);
  const plane::ParameterLayout layout = plane::ParameterLayout::of(model);

  EXPECT_EQ(layout.dim(), model.num_parameters());
  std::size_t expected_offset = 0;
  std::size_t covered = 0;
  for (const auto& block : layout.blocks()) {
    EXPECT_EQ(block.offset, covered);
    EXPECT_EQ(block.extent, model.layer(block.layer).parameter_count());
    // Parameter-free layers between blocks contribute zero extent.
    for (std::size_t l = expected_offset; l < block.layer; ++l) {
      EXPECT_EQ(model.layer(l).parameter_count(), 0u);
    }
    expected_offset = block.layer + 1;
    covered += block.extent;
  }
  EXPECT_EQ(covered, layout.dim());
  EXPECT_THROW(layout.block_of_layer(model.num_layers()), std::out_of_range);
}

TEST(ParameterLayout, SliceAddressesLayerBlock) {
  nn::Sequential model = nn::make_mlp(4, {3}, 2);
  util::Rng rng(7);
  nn::initialize(model, rng);
  const plane::ParameterLayout layout = plane::ParameterLayout::of(model);

  const auto arena = model.parameter_arena();
  for (const auto& block : layout.blocks()) {
    const auto slice = plane::ParameterLayout::slice(
        std::span<const float>(arena), block);
    const auto direct = model.layer(block.layer).parameters();
    ASSERT_EQ(slice.size(), direct.size());
    EXPECT_TRUE(std::equal(slice.begin(), slice.end(), direct.begin()));
    // The slice is a true alias, not a copy.
    EXPECT_EQ(slice.data(), direct.data());
  }
}

// ---------------------------------------------------------------------------
// Arena binding
// ---------------------------------------------------------------------------

TEST(ParameterArena, BindPreservesValuesAndAliases) {
  nn::Sequential model = nn::make_mlp(6, {5}, 3);
  util::Rng rng(11);
  nn::initialize(model, rng);
  const std::vector<float> before = model.parameters_flat();

  std::vector<float> arena(model.num_parameters(), -1.0f);
  model.bind_parameter_arena(arena);
  EXPECT_FALSE(model.owns_parameter_arena());
  EXPECT_EQ(model.parameter_arena().data(), arena.data());
  EXPECT_EQ(model.parameters_flat(), before);

  // Writes through the arena are visible through the layers and vice
  // versa — the layers VIEW the arena, they do not copy it.
  arena[0] = 123.5f;
  EXPECT_EQ(model.layer(0).parameters()[0], 123.5f);
  model.layer(0).parameters()[1] = -42.0f;
  EXPECT_EQ(arena[1], -42.0f);

  // set_parameters lands in the arena too (zero-copy storage, same API).
  std::vector<float> fresh(model.num_parameters(), 0.25f);
  model.set_parameters(fresh);
  EXPECT_EQ(arena[0], 0.25f);

  EXPECT_THROW(model.bind_parameter_arena(std::span<float>(arena).first(1)),
               std::invalid_argument);
}

TEST(ParameterArena, CloneOfBoundModelOwnsItsStorage) {
  nn::Sequential model = nn::make_mlp(6, {5}, 3);
  util::Rng rng(13);
  nn::initialize(model, rng);
  std::vector<float> arena(model.num_parameters());
  model.bind_parameter_arena(arena);

  nn::Sequential copy = model.clone();
  EXPECT_TRUE(copy.owns_parameter_arena());
  EXPECT_EQ(copy.parameters_flat(), model.parameters_flat());
  copy.layer(0).parameters()[0] += 1.0f;
  EXPECT_NE(copy.parameters_flat()[0], model.parameters_flat()[0]);
}

TEST(ParameterArena, AddAfterExternalBindThrows) {
  nn::Sequential model = nn::make_mlp(4, {3}, 2);
  std::vector<float> arena(model.num_parameters());
  model.bind_parameter_arena(arena);
  EXPECT_THROW(model.emplace<nn::Linear>(2, 2), std::logic_error);
}

// ---------------------------------------------------------------------------
// Blocked mixing kernel vs the pre-refactor row loop
// ---------------------------------------------------------------------------

/// The seed engine's aggregation, verbatim: per node, scale self then axpy
/// neighbors over the full row. The blocked kernel must be bit-identical.
std::vector<std::vector<float>> reference_dense_mix(
    const graph::MixingMatrix& mixing,
    const std::vector<std::vector<float>>& half) {
  const std::size_t n = half.size();
  std::vector<std::vector<float>> current(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& out = current[i];
    out.resize(half[i].size());
    const auto& mine = half[i];
    const float self_w = mixing.self_weight(i);
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = self_w * mine[k];
    for (const auto& entry : mixing.neighbor_weights(i)) {
      const auto& theirs = half[entry.neighbor];
      const float w = entry.weight;
      for (std::size_t k = 0; k < out.size(); ++k) out[k] += w * theirs[k];
    }
  }
  return current;
}

TEST(BlockedMixing, BitIdenticalToRowLoopAcrossBlockSizes) {
  const std::size_t n = 24;
  const std::size_t dim = 1000;  // not a multiple of any tested block
  util::Rng topo_rng(3);
  const auto topology = graph::make_random_regular(n, 6, topo_rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);

  std::vector<std::vector<float>> half(n, std::vector<float>(dim));
  util::Rng rng(17);
  for (auto& row : half) rng.fill_normal(row, 0.0f, 1.0f);
  const auto reference = reference_dense_mix(mixing, half);

  std::vector<float> half_flat(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(half[i].begin(), half[i].end(), half_flat.begin() + i * dim);
  }
  for (const std::size_t block : {std::size_t{0}, std::size_t{1},
                                  std::size_t{64}, std::size_t{333},
                                  std::size_t{4096}}) {
    std::vector<float> current_flat(n * dim, -7.0f);
    graph::apply_mixing_blocked(mixing, half_flat, current_flat, dim, block);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < dim; ++k) {
        ASSERT_EQ(current_flat[i * dim + k], reference[i][k])
            << "block=" << block << " node=" << i << " coord=" << k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine golden paths
// ---------------------------------------------------------------------------

struct EngineFixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  explicit EngineFixture(std::size_t nodes, std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 24;
    config.test_pool = 60;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);
    prototype = nn::make_mlp(config.feature_dim, {12}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);
    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, 4, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  sim::RoundEngine make_engine(const core::RoundScheduler& scheduler,
                               std::size_t sparse_k = 0) const {
    std::vector<std::size_t> degrees(fleet.num_nodes());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = topology.degree(i);
    }
    energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 2;
    config.batch_size = 8;
    config.sparse_exchange_k = sparse_k;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            std::move(accountant), config);
  }

  /// Randomizes each engine model to distinct parameters (same for every
  /// engine built from this fixture and `seed`).
  std::vector<std::vector<float>> scatter_models(sim::RoundEngine& engine,
                                                 std::uint64_t seed) const {
    util::Rng rng(seed);
    std::vector<std::vector<float>> snapshot(engine.num_nodes());
    for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
      snapshot[i].resize(prototype.num_parameters());
      rng.fill_normal(snapshot[i], 0.0f, 1.0f);
      engine.model(i).set_parameters(snapshot[i]);
    }
    return snapshot;
  }
};

/// Sync-only scheduler isolates the aggregation step.
class SyncOnlyScheduler final : public core::RoundScheduler {
 public:
  std::string name() const override { return "sync-only"; }
  core::RoundKind round_kind(std::size_t) const override {
    return core::RoundKind::kSynchronization;
  }
  bool should_train(std::size_t, std::size_t, std::size_t) const override {
    return false;
  }
};

TEST(PlaneEngine, DenseRoundBitIdenticalToReferenceRowLoop) {
  EngineFixture fixture(12);
  const SyncOnlyScheduler scheduler;
  sim::RoundEngine engine = fixture.make_engine(scheduler);
  const auto snapshot = fixture.scatter_models(engine, 99);

  engine.run_round();
  const auto reference = reference_dense_mix(fixture.mixing, snapshot);
  const auto params = engine.node_parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto row = params[i];
    for (std::size_t k = 0; k < row.size(); ++k) {
      ASSERT_EQ(row[k], reference[i][k]) << "node " << i << " coord " << k;
    }
  }
}

TEST(PlaneEngine, SparseRoundBitIdenticalToReferenceMaskedPath) {
  EngineFixture fixture(12);
  const SyncOnlyScheduler scheduler;
  const std::size_t dim = fixture.prototype.num_parameters();
  const std::size_t k = dim / 7;
  sim::RoundEngine engine = fixture.make_engine(scheduler, k);
  const auto snapshot = fixture.scatter_models(engine, 101);

  engine.run_round();

  // Pre-refactor sparse path: dense copy of own row, then masked
  // accumulate per neighbor (round t = 1's shared mask).
  const auto mask = core::shared_round_mask(sim::EngineConfig{}.seed, 1, dim, k);
  const auto params = engine.node_parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::vector<float> expected = snapshot[i];
    for (const auto& entry : fixture.mixing.neighbor_weights(i)) {
      core::accumulate_masked_difference(mask, snapshot[entry.neighbor],
                                         snapshot[i], expected, entry.weight);
    }
    const auto row = params[i];
    for (std::size_t c = 0; c < row.size(); ++c) {
      ASSERT_EQ(row[c], expected[c]) << "node " << i << " coord " << c;
    }
  }
}

TEST(PlaneEngine, TrainingRoundsBitIdenticalAcrossThreadCounts) {
  EngineFixture fixture(8);
  const core::SkipTrainScheduler scheduler(2, 2);

  for (const std::size_t sparse_k : {std::size_t{0}, std::size_t{25}}) {
    sim::RoundEngine parallel_engine =
        fixture.make_engine(scheduler, sparse_k);
    parallel_engine.run_rounds(5);

    sim::RoundEngine serial_engine = fixture.make_engine(scheduler, sparse_k);
    {
      util::ThreadPool::ScopedForceSerial serial;
      serial_engine.run_rounds(5);
    }

    for (std::size_t i = 0; i < parallel_engine.num_nodes(); ++i) {
      const auto a = parallel_engine.node_parameters()[i];
      const auto b = serial_engine.node_parameters()[i];
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "sparse_k=" << sparse_k << " node " << i;
    }
  }
}

TEST(PlaneEngine, ModelsAliasPlaneRows) {
  EngineFixture fixture(6);
  const SyncOnlyScheduler scheduler;
  sim::RoundEngine engine = fixture.make_engine(scheduler);

  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    EXPECT_FALSE(engine.model(i).owns_parameter_arena());
    EXPECT_EQ(engine.model(i).parameter_arena().data(),
              engine.node_parameters().row(i).data());
  }
  engine.run_round();  // dense round flips buffers; aliasing must follow
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    EXPECT_EQ(engine.model(i).parameter_arena().data(),
              engine.node_parameters().row(i).data());
  }
}

// ---------------------------------------------------------------------------
// Staging helpers
// ---------------------------------------------------------------------------

TEST(Staging, GatherMaskedRowsCompactsCoordinates) {
  plane::RowArena source(3, 10);
  for (std::size_t i = 0; i < 3; ++i) {
    auto row = source.row(i);
    for (std::size_t c = 0; c < 10; ++c) {
      row[c] = static_cast<float>(10 * i + c);
    }
  }
  const std::vector<std::uint32_t> mask{1, 4, 9};
  plane::RowArena staged(3, mask.size());
  plane::gather_masked_rows(source.view(), mask, staged.view());
  for (std::size_t i = 0; i < 3; ++i) {
    const auto row = staged.row(i);
    EXPECT_EQ(row[0], static_cast<float>(10 * i + 1));
    EXPECT_EQ(row[1], static_cast<float>(10 * i + 4));
    EXPECT_EQ(row[2], static_cast<float>(10 * i + 9));
  }
  plane::RowArena wrong(3, 2);
  EXPECT_THROW(plane::gather_masked_rows(source.view(), mask, wrong.view()),
               std::invalid_argument);
}

TEST(Staging, StagedDifferenceMatchesMaskedDifferenceInPlace) {
  const std::size_t dim = 32;
  std::vector<float> mine(dim), theirs(dim);
  util::Rng rng(23);
  rng.fill_normal(mine, 0.0f, 1.0f);
  rng.fill_normal(theirs, 0.0f, 1.0f);
  const auto mask = core::shared_round_mask(5, 3, dim, 9);

  std::vector<float> expected = mine;
  core::accumulate_masked_difference(mask, theirs, mine, expected, 0.3f);

  // Staged form updates `mine` in place, reading only staged snapshots.
  std::vector<float> mine_staged(mask.size()), theirs_staged(mask.size());
  core::gather_masked(mask, mine, mine_staged);
  core::gather_masked(mask, theirs, theirs_staged);
  core::accumulate_staged_difference(mask, theirs_staged, mine_staged, mine,
                                     0.3f);
  EXPECT_EQ(mine, expected);
}

}  // namespace
}  // namespace skiptrain
