#include <gtest/gtest.h>

#include "core/compression.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/engine.hpp"

namespace skiptrain::core {
namespace {

TEST(SparsifyTopK, SelectsLargestMagnitudes) {
  const std::vector<float> params{0.1f, -5.0f, 2.0f, -0.5f, 3.0f};
  const SparseModel message = sparsify_topk(params, 2);
  EXPECT_EQ(message.dim, 5u);
  ASSERT_EQ(message.nnz(), 2u);
  // Top-2 by |.|: indices 1 (-5) and 4 (3), sorted by coordinate.
  EXPECT_EQ(message.indices[0], 1u);
  EXPECT_EQ(message.indices[1], 4u);
  EXPECT_FLOAT_EQ(message.values[0], -5.0f);
  EXPECT_FLOAT_EQ(message.values[1], 3.0f);
  EXPECT_EQ(message.wire_bytes(), 16u);
}

TEST(SparsifyTopK, FullKEqualsIdentity) {
  const std::vector<float> params{1.0f, 2.0f, 3.0f};
  const SparseModel message = sparsify_topk(params, 10);
  ASSERT_EQ(message.nnz(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(message.indices[i], i);
    EXPECT_FLOAT_EQ(message.values[i], params[i]);
  }
}

TEST(SparsifyTopK, ZeroKIsEmpty) {
  const std::vector<float> params{1.0f, 2.0f};
  const SparseModel message = sparsify_topk(params, 0);
  EXPECT_EQ(message.nnz(), 0u);
  EXPECT_EQ(message.wire_bytes(), 0u);
}

TEST(SparsifyTopK, DeterministicOnTies) {
  const std::vector<float> params{1.0f, -1.0f, 1.0f, 1.0f};
  const SparseModel a = sparsify_topk(params, 2);
  const SparseModel b = sparsify_topk(params, 2);
  EXPECT_EQ(a.indices, b.indices);
  // Ties resolve to lower coordinates.
  EXPECT_EQ(a.indices[0], 0u);
  EXPECT_EQ(a.indices[1], 1u);
}

TEST(AccumulateSparseDifference, AppliesWeightedDelta) {
  const std::vector<float> sender{10.0f, 0.0f, 20.0f};
  const SparseModel message = sparsify_topk(sender, 2);  // coords 0 and 2
  const std::vector<float> base{1.0f, 2.0f, 3.0f};
  std::vector<float> out = base;
  accumulate_sparse_difference(message, base, out, 0.5f);
  EXPECT_FLOAT_EQ(out[0], 1.0f + 0.5f * (10.0f - 1.0f));
  EXPECT_FLOAT_EQ(out[1], 2.0f);  // untouched coordinate
  EXPECT_FLOAT_EQ(out[2], 3.0f + 0.5f * (20.0f - 3.0f));
}

TEST(AccumulateSparseDifference, DimensionMismatchThrows) {
  const SparseModel message = sparsify_topk(std::vector<float>{1.0f, 2.0f}, 1);
  std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(
      accumulate_sparse_difference(message, wrong, wrong, 1.0f),
      std::invalid_argument);
}

TEST(EffectiveParams, TwoPerCoordinate) {
  const SparseModel message = sparsify_topk(std::vector<float>(100, 1.0f), 25);
  EXPECT_EQ(effective_params(message), 50u);
}

TEST(SparseModel, WireBytesGeneralizeOverValueBytes) {
  // Quantized top-k composition: 4-byte index + 1-2-byte value.
  SparseModel message = sparsify_topk(std::vector<float>(100, 1.0f), 10);
  EXPECT_EQ(message.value_bytes, 4u);  // float32 default
  EXPECT_EQ(message.wire_bytes(), 80u);
  message.value_bytes = 2;  // fp16 values
  EXPECT_EQ(message.wire_bytes(), 60u);
  EXPECT_EQ(effective_params(message), 15u);
  message.value_bytes = 1;  // int8 values
  EXPECT_EQ(message.wire_bytes(), 50u);
  EXPECT_EQ(effective_params(message), 13u);  // 12.5 rounds up, not down
}

TEST(EffectiveParams, RoundsToNearestNotDown) {
  // k=1 at 4-byte values is exactly 2 dense params; at 1-byte values the
  // 1.25-param message must not floor to 1 (the llround regression).
  SparseModel message = sparsify_topk(std::vector<float>{3.0f, 1.0f}, 1);
  EXPECT_EQ(effective_params(message), 2u);
  message.value_bytes = 1;
  EXPECT_EQ(effective_params(message), 1u);  // 1.25 -> 1
  SparseModel three = sparsify_topk(std::vector<float>{3.0f, 1.0f, 2.0f}, 3);
  three.value_bytes = 2;
  EXPECT_EQ(effective_params(three), 5u);  // 4.5 -> 5 (round half up)
}

// --- Engine integration -----------------------------------------------------

struct CompressionFixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  CompressionFixture()
      : fleet(energy::Fleet::even(8, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = 8;
    config.samples_per_node = 30;
    config.test_pool = 100;
    data = data::make_cifar_synthetic(config);
    prototype = nn::make_mlp(config.feature_dim, {8}, 10);
    util::Rng rng(1);
    nn::initialize(prototype, rng);
    util::Rng topo_rng(2);
    topology = graph::make_random_regular(8, 4, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  sim::RoundEngine make_engine(const RoundScheduler& scheduler,
                               std::size_t topk) {
    std::vector<std::size_t> degrees(8, 4);
    energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 2;
    config.batch_size = 8;
    config.sparse_exchange_k = topk;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            std::move(accountant), config);
  }
};

TEST(CompressedEngine, FullKMatchesDenseExchange) {
  CompressionFixture fixture;
  const DpsgdScheduler scheduler;
  const std::size_t dim = fixture.prototype.num_parameters();

  auto dense = fixture.make_engine(scheduler, 0);
  auto sparse_full = fixture.make_engine(scheduler, dim);
  dense.run_rounds(4);
  sparse_full.run_rounds(4);

  for (std::size_t i = 0; i < 8; ++i) {
    const auto& a = dense.node_parameters()[i];
    const auto& b = sparse_full.node_parameters()[i];
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-5f) << "node " << i << " coord " << k;
    }
  }
}

TEST(CompressedEngine, CommEnergyScalesWithWireFraction) {
  CompressionFixture fixture;
  const DpsgdScheduler scheduler;
  const std::size_t dim = fixture.prototype.num_parameters();

  auto dense = fixture.make_engine(scheduler, 0);
  auto sparse = fixture.make_engine(scheduler, dim / 10);  // 10% wire volume
  dense.run_rounds(3);
  sparse.run_rounds(3);

  const double fraction =
      sparse.accountant().total_comm_wh() / dense.accountant().total_comm_wh();
  EXPECT_NEAR(fraction, 0.1, 0.02);
  // Training energy is unaffected by exchange compression.
  EXPECT_DOUBLE_EQ(sparse.accountant().total_training_wh(),
                   dense.accountant().total_training_wh());
}

TEST(CompressedEngine, SparseSyncStillContracts) {
  CompressionFixture fixture;

  // Sync-only scheduler via Greedy with zero budgets.
  const GreedyScheduler scheduler;
  std::vector<std::size_t> degrees(8, 4);
  energy::EnergyAccountant accountant(fixture.fleet, energy::CommModel{},
                                      89834, std::move(degrees));
  accountant.set_budgets(std::vector<std::size_t>(8, 0));
  sim::EngineConfig config;
  config.sparse_exchange_k = fixture.prototype.num_parameters() / 4;
  sim::RoundEngine engine(fixture.prototype, fixture.data, fixture.mixing,
                          scheduler, std::move(accountant), config);

  util::Rng rng(5);
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  const auto spread = [&] {
    double total = 0.0;
    const auto& reference = engine.node_parameters()[0];
    for (std::size_t i = 1; i < 8; ++i) {
      const auto& params = engine.node_parameters()[i];
      for (std::size_t k = 0; k < params.size(); ++k) {
        total += std::abs(params[k] - reference[k]);
      }
    }
    return total;
  };
  engine.run_round();
  const double before = spread();
  engine.run_rounds(12);
  EXPECT_LT(spread(), before * 0.8);
}

}  // namespace
}  // namespace skiptrain::core
