#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "skiptrain_ckpt_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, RoundTripPreservesParameters) {
  Sequential model = make_mlp(8, {16}, 4);
  util::Rng rng(3);
  initialize(model, rng);
  const std::vector<float> original = model.parameters_flat();

  save_checkpoint(model, path_);

  Sequential other = make_mlp(8, {16}, 4);
  initialize(other, rng);  // different weights
  ASSERT_NE(other.parameters_flat(), original);

  load_checkpoint(other, path_);
  EXPECT_EQ(other.parameters_flat(), original);
}

TEST_F(SerializeTest, HeaderReportsParamCount) {
  Sequential model = make_softmax_regression(10, 5);
  save_checkpoint(model, path_);
  EXPECT_EQ(checkpoint_param_count(path_), model.num_parameters());
}

TEST_F(SerializeTest, MismatchedArchitectureThrows) {
  Sequential model = make_mlp(8, {16}, 4);
  util::Rng rng(5);
  initialize(model, rng);
  save_checkpoint(model, path_);

  Sequential wrong = make_mlp(8, {17}, 4);
  EXPECT_THROW(load_checkpoint(wrong, path_), std::runtime_error);
}

TEST_F(SerializeTest, CorruptMagicThrows) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a checkpoint at all";
  }
  Sequential model = make_mlp(2, {}, 2);
  EXPECT_THROW(load_checkpoint(model, path_), std::runtime_error);
  EXPECT_THROW(checkpoint_param_count(path_), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  Sequential model = make_mlp(8, {16}, 4);
  save_checkpoint(model, path_);
  // Truncate to header + a few floats.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes(32);
  in.read(bytes.data(), 32);
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 32);
  }
  EXPECT_THROW(load_checkpoint(model, path_), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Sequential model = make_mlp(2, {}, 2);
  EXPECT_THROW(load_checkpoint(model, "/nonexistent/ckpt.bin"),
               std::runtime_error);
  EXPECT_THROW(save_checkpoint(model, "/nonexistent-dir/ckpt.bin"),
               std::runtime_error);
}

TEST_F(SerializeTest, TrailingGarbageAfterPayloadThrows) {
  // Regression: the loader used to read exactly param_count floats and
  // silently ignore whatever followed, so a corrupted (e.g. doubly
  // concatenated) checkpoint half-loaded as a valid one.
  Sequential model = make_mlp(8, {16}, 4);
  util::Rng rng(11);
  initialize(model, rng);
  save_checkpoint(model, path_);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "trailing garbage";
  }
  EXPECT_THROW(load_checkpoint(model, path_), std::runtime_error);
  EXPECT_THROW((void)checkpoint_param_count(path_), std::runtime_error);
}

TEST_F(SerializeTest, HostileParamCountIsRejectedBeforeAllocating) {
  // A header claiming 2^61 parameters would overflow
  // `param_count * sizeof(float)` (and try to allocate exabytes) in the
  // old loader. The hardened reader bounds the count against the actual
  // file size first.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write("SKTN", 4);
    const std::uint32_t version = kCheckpointVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t huge = std::uint64_t{1} << 61;
    out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
    const float payload[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    out.write(reinterpret_cast<const char*>(payload), sizeof(payload));
  }
  Sequential model = make_mlp(8, {16}, 4);
  EXPECT_THROW(load_checkpoint(model, path_), std::runtime_error);
  EXPECT_THROW((void)checkpoint_param_count(path_), std::runtime_error);
}

TEST_F(SerializeTest, LargeModelRoundTrip) {
  Sequential model = make_cifar_cnn();
  util::Rng rng(7);
  initialize(model, rng);
  save_checkpoint(model, path_);
  Sequential loaded = make_cifar_cnn();
  load_checkpoint(loaded, path_);
  EXPECT_EQ(loaded.parameters_flat(), model.parameters_flat());
}

}  // namespace
}  // namespace skiptrain::nn
