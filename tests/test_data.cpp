#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hpp"
#include "data/distribution.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace skiptrain::data {
namespace {

std::vector<std::int32_t> cyclic_labels(std::size_t n, std::size_t classes) {
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(i % classes);
  }
  return labels;
}

// --- Partition properties ---------------------------------------------------

class ShardPartitionParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShardPartitionParam, CoversAllSamplesAndBoundsLabels) {
  const auto [nodes, shards] = GetParam();
  const std::size_t samples = nodes * shards * 25;
  const auto labels = cyclic_labels(samples, 10);
  util::Rng rng(17);
  const Partition partition = shard_partition(labels, nodes, shards, rng);

  ASSERT_EQ(partition.size(), nodes);
  validate_partition(partition, samples);  // throws on violation

  // Each node sees at most `shards` distinct labels... plus at most one
  // extra when a shard straddles a label boundary. The McMahan bound that
  // the paper relies on is <= 2 * shards in the worst case; with balanced
  // classes and shard_size | class_size it is exactly <= shards + 1.
  for (const auto& node : partition) {
    std::set<std::int32_t> distinct;
    for (const std::size_t idx : node) distinct.insert(labels[idx]);
    EXPECT_LE(distinct.size(), shards + 1);
    EXPECT_GE(distinct.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ShardPartitionParam,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(16, 2),
                      std::make_tuple(10, 3), std::make_tuple(32, 1),
                      std::make_tuple(8, 4)));

TEST(ShardPartition, TwoShardLimitsLabelsWithExactDivision) {
  // 10 classes x 100 samples each, 50 nodes x 2 shards of size 10:
  // shards never straddle class boundaries, so <= 2 labels per node.
  const std::size_t nodes = 50;
  std::vector<std::int32_t> labels;
  for (int c = 0; c < 10; ++c) {
    labels.insert(labels.end(), 100, c);
  }
  util::Rng rng(3);
  const Partition partition = shard_partition(labels, nodes, 2, rng);
  for (const auto& node : partition) {
    std::set<std::int32_t> distinct;
    for (const std::size_t idx : node) distinct.insert(labels[idx]);
    EXPECT_LE(distinct.size(), 2u);
  }
}

TEST(ShardPartition, DeterministicGivenSeed) {
  const auto labels = cyclic_labels(400, 10);
  util::Rng rng_a(9), rng_b(9);
  EXPECT_EQ(shard_partition(labels, 8, 2, rng_a),
            shard_partition(labels, 8, 2, rng_b));
}

TEST(ShardPartition, RejectsInvalidArguments) {
  const auto labels = cyclic_labels(10, 2);
  util::Rng rng(1);
  EXPECT_THROW(shard_partition(labels, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(shard_partition(labels, 100, 2, rng), std::invalid_argument);
}

TEST(IidPartition, EqualSizesAndCoverage) {
  util::Rng rng(5);
  const Partition partition = iid_partition(103, 10, rng);
  validate_partition(partition, 103);
  for (const auto& node : partition) {
    EXPECT_GE(node.size(), 10u);
    EXPECT_LE(node.size(), 11u);
  }
}

TEST(DirichletPartition, CoverageAndHeterogeneityOrdering) {
  const auto labels = cyclic_labels(2000, 10);
  util::Rng rng(7);
  const Partition concentrated = dirichlet_partition(labels, 20, 100.0, rng);
  const Partition skewed = dirichlet_partition(labels, 20, 0.1, rng);
  validate_partition(concentrated, labels.size());
  validate_partition(skewed, labels.size());

  // Build federated wrappers to reuse the heterogeneity metric.
  const auto heterogeneity = [&](const Partition& partition) {
    ClassCounts counts(partition.size(), std::vector<std::size_t>(10, 0));
    for (std::size_t node = 0; node < partition.size(); ++node) {
      for (const std::size_t idx : partition[node]) {
        ++counts[node][static_cast<std::size_t>(labels[idx])];
      }
    }
    return heterogeneity_index(counts);
  };
  EXPECT_GT(heterogeneity(skewed), heterogeneity(concentrated) + 0.2);
}

TEST(ValidatePartition, DetectsViolations) {
  EXPECT_THROW(validate_partition({{0, 1}, {1, 2}}, 3), std::runtime_error);
  EXPECT_THROW(validate_partition({{0, 1}}, 3), std::runtime_error);
  EXPECT_THROW(validate_partition({{0, 5}}, 3), std::runtime_error);
  EXPECT_NO_THROW(validate_partition({{2, 0}, {1}}, 3));
}

TEST(Gamma, DirichletWeightsNormalized) {
  util::Rng rng(11);
  const auto weights = dirichlet_weights(rng, 5.0, 16);
  double total = 0.0;
  for (const double w : weights) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// --- Dataset & views ---------------------------------------------------------

TEST(DatasetView, SampleBatchShapesAndLabels) {
  Dataset dataset;
  dataset.features = tensor::Tensor({10, 3});
  dataset.labels.resize(10);
  dataset.num_classes = 10;
  for (std::size_t i = 0; i < 10; ++i) {
    dataset.labels[i] = static_cast<std::int32_t>(i);
    for (std::size_t j = 0; j < 3; ++j) {
      dataset.features.at(i, j) = static_cast<float>(i);
    }
  }
  DatasetView view(&dataset, {2, 5, 7});
  util::Rng rng(3);
  tensor::Tensor batch;
  std::vector<std::int32_t> labels;
  view.sample_batch(rng, 64, batch, labels);
  EXPECT_EQ(batch.shape(), (tensor::Shape{64, 3}));
  ASSERT_EQ(labels.size(), 64u);
  // Each drawn sample's features equal its label (by construction).
  for (std::size_t b = 0; b < 64; ++b) {
    EXPECT_TRUE(labels[b] == 2 || labels[b] == 5 || labels[b] == 7);
    EXPECT_EQ(batch.at(b, 0), static_cast<float>(labels[b]));
  }
}

TEST(DatasetView, FillRangePreservesOrder) {
  Dataset dataset;
  dataset.features = tensor::Tensor({5, 1});
  dataset.labels = {0, 1, 2, 3, 4};
  dataset.num_classes = 5;
  for (std::size_t i = 0; i < 5; ++i) {
    dataset.features.at(i, 0) = static_cast<float>(10 * i);
  }
  DatasetView view(&dataset, {4, 2, 0});
  tensor::Tensor batch;
  std::vector<std::int32_t> labels;
  view.fill_range(1, 2, batch, labels);
  EXPECT_EQ(labels[0], 2);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(batch.at(0, 0), 20.0f);
  EXPECT_EQ(batch.at(1, 0), 0.0f);
}

TEST(DatasetView, ClassHistogram) {
  Dataset dataset;
  dataset.features = tensor::Tensor({4, 1});
  dataset.labels = {1, 1, 0, 2};
  dataset.num_classes = 3;
  DatasetView view = DatasetView::whole(&dataset);
  const auto histogram = view.class_histogram();
  EXPECT_EQ(histogram, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(SplitDataset, DisjointAndComplete) {
  Dataset pool;
  pool.features = tensor::Tensor({100, 2});
  pool.labels.resize(100);
  pool.num_classes = 10;
  for (std::size_t i = 0; i < 100; ++i) {
    pool.labels[i] = static_cast<std::int32_t>(i % 10);
    pool.features.at(i, 0) = static_cast<float>(i);  // unique fingerprint
  }
  util::Rng rng(13);
  const auto [first, second] = split_dataset(pool, 0.5, rng);
  EXPECT_EQ(first.size(), 50u);
  EXPECT_EQ(second.size(), 50u);

  std::set<float> seen;
  for (std::size_t i = 0; i < 50; ++i) seen.insert(first.features.at(i, 0));
  for (std::size_t i = 0; i < 50; ++i) seen.insert(second.features.at(i, 0));
  EXPECT_EQ(seen.size(), 100u);  // no sample appears twice
}

// --- Synthetic workloads -----------------------------------------------------

CifarSynConfig small_cifar() {
  CifarSynConfig config;
  config.nodes = 16;
  config.samples_per_node = 50;
  config.test_pool = 400;
  return config;
}

FemnistSynConfig small_femnist() {
  FemnistSynConfig config;
  config.nodes = 16;
  config.mean_samples_per_node = 60;
  config.test_pool = 400;
  return config;
}

TEST(CifarSynthetic, StructureAndInvariants) {
  const FederatedData data = make_cifar_synthetic(small_cifar());
  EXPECT_EQ(data.num_nodes(), 16u);
  EXPECT_EQ(data.train.size(), 16u * 50u);
  EXPECT_EQ(data.train.num_classes, 10u);
  EXPECT_EQ(data.validation.size(), 200u);
  EXPECT_EQ(data.test.size(), 200u);
  data.train.validate();
  data.validation.validate();
  data.test.validate();
  validate_partition(data.node_indices, data.train.size());
}

TEST(CifarSynthetic, TwoShardSkewIsStrong) {
  const FederatedData data = make_cifar_synthetic(small_cifar());
  const ClassCounts counts = class_distribution(data);
  const auto distinct = distinct_classes_per_node(counts);
  for (const std::size_t d : distinct) {
    EXPECT_LE(d, 4u);  // 2 shards + boundary effects + label noise
  }
  EXPECT_GT(heterogeneity_index(counts), 0.5);
}

TEST(CifarSynthetic, DeterministicInSeed) {
  const FederatedData a = make_cifar_synthetic(small_cifar());
  const FederatedData b = make_cifar_synthetic(small_cifar());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_EQ(a.node_indices, b.node_indices);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.train.features.at(i), b.train.features.at(i));
  }

  CifarSynConfig other = small_cifar();
  other.seed = 777;
  const FederatedData c = make_cifar_synthetic(other);
  EXPECT_NE(a.train.features.at(0), c.train.features.at(0));
}

TEST(FemnistSynthetic, StructureAndNaturalPartition) {
  const FederatedData data = make_femnist_synthetic(small_femnist());
  EXPECT_EQ(data.num_nodes(), 16u);
  EXPECT_EQ(data.train.num_classes, 62u);
  data.train.validate();
  validate_partition(data.node_indices, data.train.size());

  // Writer sizes are clamped to [mean/2, 2*mean].
  for (const auto& node : data.node_indices) {
    EXPECT_GE(node.size(), 30u);
    EXPECT_LE(node.size(), 120u);
  }
}

TEST(FemnistSynthetic, MoreHomogeneousThanCifar) {
  // This is the Figure 7 / §4.7 claim: FEMNIST's natural partition is far
  // closer to IID than CIFAR's 2-shard split.
  const FederatedData cifar = make_cifar_synthetic(small_cifar());
  const FederatedData femnist = make_femnist_synthetic(small_femnist());
  const double h_cifar = heterogeneity_index(class_distribution(cifar));
  const double h_femnist = heterogeneity_index(class_distribution(femnist));
  EXPECT_LT(h_femnist, h_cifar);

  // FEMNIST writers cover many classes; CIFAR nodes only ~2.
  const auto distinct_femnist =
      distinct_classes_per_node(class_distribution(femnist));
  double mean_distinct = 0.0;
  for (const std::size_t d : distinct_femnist) {
    mean_distinct += static_cast<double>(d);
  }
  mean_distinct /= static_cast<double>(distinct_femnist.size());
  EXPECT_GT(mean_distinct, 20.0);
}

TEST(Distribution, RenderPlotSmoke) {
  const FederatedData data = make_cifar_synthetic(small_cifar());
  const std::string plot =
      render_distribution_plot(class_distribution(data), 10);
  EXPECT_NE(plot.find("class \\ node"), std::string::npos);
  EXPECT_NE(plot.find("legend"), std::string::npos);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset dataset;
  dataset.features = tensor::Tensor({2, 1});
  dataset.labels = {0, 5};
  dataset.num_classes = 3;
  EXPECT_THROW(dataset.validate(), std::runtime_error);
}

}  // namespace
}  // namespace skiptrain::data
