// Scenario-engine semantics: hostile trace inputs, harvest determinism,
// battery hysteresis, churn-masked aggregation, and the two determinism
// contracts (thread-count independence and kill-anywhere resume) with a
// scenario active in both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "ckpt/trial_store.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sweep/result_sink.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain {
namespace {

using scenario::FleetScenario;
using scenario::HarvestKind;
using scenario::HarvestTrace;
using scenario::ScenarioConfig;

// --- hostile trace inputs --------------------------------------------------

HarvestTrace parse(const std::string& csv) {
  std::istringstream in(csv);
  return HarvestTrace::parse_csv(in, "test.csv");
}

void expect_parse_error(const std::string& csv, const std::string& needle) {
  try {
    (void)parse(csv);
    FAIL() << "expected parse failure mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(HarvestTraceHostile, EmptyFileIsRejected) {
  expect_parse_error("", "no samples");
  expect_parse_error("time,node,harvest_mwh\n", "no samples");
}

TEST(HarvestTraceHostile, BadHeaderIsRejected) {
  expect_parse_error("when,who,how_much\n0,0,1.0\n", "header");
}

TEST(HarvestTraceHostile, NonMonotonicTimestampsAreRejected) {
  expect_parse_error(
      "time,node,harvest_mwh\n0,0,1.0\n2,0,1.0\n1,0,1.0\n",
      "monotonic");
  // Equal timestamps are just as non-monotonic as decreasing ones.
  expect_parse_error(
      "time,node,harvest_mwh\n3,0,1.0\n3,0,1.0\n", "monotonic");
}

TEST(HarvestTraceHostile, NanAndNegativeHarvestAreRejected) {
  expect_parse_error("time,node,harvest_mwh\n0,0,nan\n", "harvest");
  expect_parse_error("time,node,harvest_mwh\n0,0,inf\n", "harvest");
  expect_parse_error("time,node,harvest_mwh\n0,0,-0.5\n", "harvest");
}

TEST(HarvestTraceHostile, MalformedRowsAreRejected) {
  expect_parse_error("time,node,harvest_mwh\n0,0\n", "fields");
  expect_parse_error("time,node,harvest_mwh\n0,0,1.0,1,junk\n", "fields");
  expect_parse_error("time,node,harvest_mwh\n0,abc,1.0\n", "node");
  expect_parse_error("time,node,harvest_mwh\n0,-1,1.0\n", "node");
  expect_parse_error("time,node,harvest_mwh\n0,0,1.0,2\n", "availability");
}

TEST(HarvestTraceHostile, BinaryTrailingBytesAreRejected) {
  std::string csv = "time,node,harvest_mwh\n0,0,1.0\n";
  csv.push_back('\0');
  csv += "garbage";
  expect_parse_error(csv, "binary");
}

TEST(HarvestTraceHostile, NodeIdGapIsRejected) {
  expect_parse_error("time,node,harvest_mwh\n0,0,1.0\n0,2,1.0\n", "node");
}

TEST(HarvestTrace, ParsesSeriesWithWrapAndAvailability) {
  const HarvestTrace trace = parse(
      "time,node,harvest_mwh,available\n"
      "0,0,1.5,1\n"
      "0,1,0.25,0\n"
      "1,0,2.5,1\n");
  EXPECT_EQ(trace.num_series(), 2u);
  EXPECT_EQ(trace.series_length(0), 2u);
  EXPECT_EQ(trace.series_length(1), 1u);
  EXPECT_DOUBLE_EQ(trace.harvest_mwh(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(trace.harvest_mwh(0, 2), 2.5);
  EXPECT_DOUBLE_EQ(trace.harvest_mwh(0, 3), 1.5);  // series wraps
  EXPECT_DOUBLE_EQ(trace.harvest_mwh(2, 1), 1.5);  // node 2 -> series 0
  EXPECT_FALSE(trace.available(1, 1));
  EXPECT_TRUE(trace.available(0, 1));
}

TEST(HarvestTrace, ContentHashDistinguishesTraces) {
  const HarvestTrace a = parse("time,node,harvest_mwh\n0,0,1.0\n");
  const HarvestTrace b = parse("time,node,harvest_mwh\n0,0,2.0\n");
  const HarvestTrace a2 = parse("time,node,harvest_mwh\n0,0,1.0\n");
  EXPECT_NE(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.content_hash(), a2.content_hash());
}

// --- named configs ---------------------------------------------------------

TEST(ScenarioConfigNames, KnownNamesAndErrors) {
  EXPECT_FALSE(scenario::make_config("").enabled);
  EXPECT_FALSE(scenario::make_config("none").enabled);
  EXPECT_TRUE(scenario::make_config("solar").enabled);
  EXPECT_TRUE(scenario::make_config("churn").enabled);
  EXPECT_THROW((void)scenario::make_config("lunar"), std::invalid_argument);
  EXPECT_THROW((void)scenario::make_config("trace:"), std::invalid_argument);
  EXPECT_THROW((void)scenario::make_config("trace:/no/such/file.csv"),
               std::runtime_error);
  EXPECT_EQ(scenario::scenario_token(""), "none");
  EXPECT_EQ(scenario::scenario_token("solar"), "solar");
}

TEST(ScenarioConfigNames, ConfigHashSeparatesScenarios) {
  EXPECT_EQ(scenario::make_config("none").config_hash(), 0u);
  EXPECT_NE(scenario::make_config("solar").config_hash(),
            scenario::make_config("churn").config_hash());
  EXPECT_EQ(scenario::make_config("solar").config_hash(),
            scenario::make_config("solar").config_hash());
}

TEST(ScenarioConfigNames, ValidateRejectsBrokenConfigs) {
  ScenarioConfig config = scenario::make_config("solar");
  config.dropout_soc = 0.6;
  config.reentry_soc = 0.4;  // inverted hysteresis
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = scenario::make_config("solar");
  config.battery_rounds = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = scenario::make_config("solar");
  config.harvest = HarvestKind::kTrace;  // no trace attached
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// --- harvest process -------------------------------------------------------

FleetScenario make_fleet(const ScenarioConfig& config, std::size_t nodes,
                         std::uint64_t seed = 42) {
  return FleetScenario(config, nodes, seed,
                       std::vector<double>(nodes, 2.0 /* mWh per round */));
}

TEST(SolarHarvest, IsDeterministicAndZeroAtNight) {
  const ScenarioConfig config = scenario::make_config("solar");
  const FleetScenario a = make_fleet(config, 4);
  const FleetScenario b = make_fleet(config, 4);
  // Pure function of (config, seed, node, t): repeated sampling and a
  // twin fleet agree bit-for-bit.
  for (std::size_t node = 0; node < 4; ++node) {
    for (std::size_t t = 1; t <= 48; ++t) {
      const double sample = a.harvest_sample_mwh(node, t);
      EXPECT_GE(sample, 0.0);
      EXPECT_EQ(sample, a.harvest_sample_mwh(node, t));
      EXPECT_EQ(sample, b.harvest_sample_mwh(node, t));
    }
  }
  // The second half of the diurnal cycle is night: sin(phase) < 0 for
  // t-1 in (period/2, period), so harvest clips to exactly zero.
  for (std::size_t t = 15; t <= 24; ++t) {
    EXPECT_EQ(a.harvest_sample_mwh(0, t), 0.0) << "t=" << t;
  }
  // A different seed changes the sky.
  const FleetScenario c = make_fleet(config, 4, 43);
  bool any_different = false;
  for (std::size_t t = 2; t <= 8; ++t) {
    if (c.harvest_sample_mwh(0, t) != a.harvest_sample_mwh(0, t)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Battery, TrySpendDrainsAndBrownsOut) {
  ScenarioConfig config;
  config.enabled = true;
  config.harvest = HarvestKind::kNone;  // battery only
  config.battery_rounds = 2.0;          // capacity = 4 mWh at 2 mWh/round
  config.initial_soc = 1.0;
  config.dropout_soc = 0.0;  // only brownouts take the node down
  config.reentry_soc = 0.0;
  FleetScenario fleet = make_fleet(config, 1);
  EXPECT_DOUBLE_EQ(fleet.capacity_mwh(0), 4.0);
  EXPECT_TRUE(fleet.try_spend(0, 3.0));
  EXPECT_DOUBLE_EQ(fleet.charge_mwh(0), 1.0);
  EXPECT_TRUE(fleet.alive(0));
  // The remaining 1 mWh cannot cover 2 — brownout: drained to zero, down.
  EXPECT_FALSE(fleet.try_spend(0, 2.0));
  EXPECT_DOUBLE_EQ(fleet.charge_mwh(0), 0.0);
  EXPECT_FALSE(fleet.alive(0));
  EXPECT_EQ(fleet.brownouts_total(), 1u);
}

TEST(Battery, HysteresisRequiresTheHigherThresholdToReenter) {
  // Trace: nothing for two steps, then a big delivery.
  auto trace = std::make_shared<const HarvestTrace>(parse(
      "time,node,harvest_mwh\n0,0,0\n1,0,0\n2,0,100\n3,0,0\n"));
  ScenarioConfig config;
  config.enabled = true;
  config.harvest = HarvestKind::kTrace;
  config.trace = trace;
  config.battery_rounds = 10.0;  // capacity 20 mWh
  config.initial_soc = 0.05;     // below dropout from the start
  config.dropout_soc = 0.1;
  config.reentry_soc = 0.5;
  FleetScenario fleet = make_fleet(config, 1);
  fleet.step_node(0, 1);
  EXPECT_FALSE(fleet.alive(0));  // 5% < 10% dropout
  fleet.step_node(0, 2);
  EXPECT_FALSE(fleet.alive(0));  // still nothing harvested
  fleet.step_node(0, 3);         // 100 mWh clips to capacity -> 100% SoC
  EXPECT_TRUE(fleet.alive(0));   // cleared the 50% re-entry bar
  EXPECT_DOUBLE_EQ(fleet.charge_mwh(0), fleet.capacity_mwh(0));
  EXPECT_EQ(fleet.down_steps_total(), 2u);
  EXPECT_EQ(fleet.steps_total(), 3u);
}

TEST(Battery, DutyCycleFlagForcesTheNodeDown) {
  auto trace = std::make_shared<const HarvestTrace>(parse(
      "time,node,harvest_mwh,available\n0,0,5,0\n1,0,5,1\n"));
  ScenarioConfig config;
  config.enabled = true;
  config.harvest = HarvestKind::kTrace;
  config.trace = trace;
  config.initial_soc = 1.0;
  FleetScenario fleet = make_fleet(config, 1);
  fleet.step_node(0, 1);
  EXPECT_FALSE(fleet.alive(0));  // full battery, but the trace says off
  fleet.step_node(0, 2);
  EXPECT_TRUE(fleet.alive(0));
}

TEST(FleetScenarioState, SaveRestoreRoundTripsExactly) {
  const ScenarioConfig config = scenario::make_config("churn");
  FleetScenario original = make_fleet(config, 5);
  for (std::size_t t = 1; t <= 9; ++t) original.begin_round(t);
  (void)original.try_spend(2, 1.5);

  std::stringstream buffer;
  {
    ckpt::ImageWriter writer(buffer);
    original.save_state(writer);
  }
  const std::string bytes = buffer.str();
  FleetScenario restored = make_fleet(config, 5);
  {
    std::istringstream in(bytes);
    ckpt::ImageReader reader(in, bytes.size());
    restored.restore_state(reader);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(restored.charge_mwh(i), original.charge_mwh(i));
    EXPECT_EQ(restored.alive(i), original.alive(i));
  }
  EXPECT_EQ(restored.steps_total(), original.steps_total());
  EXPECT_EQ(restored.down_steps_total(), original.down_steps_total());
  EXPECT_EQ(restored.brownouts_total(), original.brownouts_total());
  EXPECT_EQ(restored.harvested_mwh_total(), original.harvested_mwh_total());
  // The continuations agree bit-for-bit.
  for (std::size_t t = 10; t <= 14; ++t) {
    original.begin_round(t);
    restored.begin_round(t);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(restored.charge_mwh(i), original.charge_mwh(i));
    EXPECT_EQ(restored.alive(i), original.alive(i));
  }
}

// --- energy-aware schedulers -----------------------------------------------

TEST(HarvestAwareScheduler, ProbabilityRidesTheDiurnalWave) {
  const core::HarvestAwareSkipTrainScheduler scheduler(
      /*gamma_train=*/1, /*gamma_sync=*/1, /*period_rounds=*/24.0,
      /*participation_floor=*/0.2, /*seed=*/7);
  // Solar noon (t-1 = period/4): sin = 1, probability = 1.
  EXPECT_DOUBLE_EQ(scheduler.probability(7), 1.0);
  // Night (t-1 in the negative half): clipped to the floor.
  EXPECT_DOUBLE_EQ(scheduler.probability(19), 0.2);
  EXPECT_THROW(core::HarvestAwareSkipTrainScheduler(1, 1, 0.0, 0.2, 7),
               std::invalid_argument);
  EXPECT_THROW(core::HarvestAwareSkipTrainScheduler(1, 1, 24.0, 1.5, 7),
               std::invalid_argument);
}

TEST(DecrementalScheduler, ParticipationDecaysWithSpentBudget) {
  const core::DecrementalParticipationScheduler scheduler(
      {10, 10}, /*alpha=*/2.0, /*seed=*/5);
  EXPECT_DOUBLE_EQ(scheduler.probability(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.probability(0, 5), 0.25);  // (1/2)^2
  EXPECT_DOUBLE_EQ(scheduler.probability(0, 0), 0.0);
  EXPECT_FALSE(scheduler.should_train(3, 0, 0));
  // Every round is a training round for this scheduler.
  EXPECT_EQ(scheduler.round_kind(1), core::RoundKind::kTraining);
  EXPECT_EQ(scheduler.round_kind(2), core::RoundKind::kTraining);
}

// --- engine integration ----------------------------------------------------

struct Fixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  explicit Fixture(std::size_t nodes, std::size_t degree,
                   std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 24;
    config.test_pool = 120;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);

    prototype = nn::make_mlp(config.feature_dim, {12}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);

    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, degree, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  energy::EnergyAccountant make_accountant() const {
    std::vector<std::size_t> degrees(fleet.num_nodes());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = topology.degree(i);
    }
    return energy::EnergyAccountant(fleet, energy::CommModel{}, 89834,
                                    std::move(degrees));
  }

  sim::RoundEngine make_engine(const core::RoundScheduler& scheduler,
                               sim::EngineConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            make_accountant(), config);
  }

  sim::AsyncGossipEngine make_async(const core::RoundScheduler& scheduler,
                                    sim::AsyncConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    std::vector<double> seconds(fleet.num_nodes());
    for (std::size_t i = 0; i < seconds.size(); ++i) {
      seconds[i] = 1.0 + 0.31 * static_cast<double>(i % 5);
    }
    return sim::AsyncGossipEngine(prototype, data, topology, scheduler,
                                  make_accountant(), std::move(seconds),
                                  config);
  }
};

bool bytes_equal(plane::ConstMatrixView a, plane::ConstMatrixView b) {
  if (a.rows != b.rows || a.dim != b.dim) return false;
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.rows * a.dim * sizeof(float)) == 0;
}

/// A churn config whose batteries actually cycle at engine energy scales:
/// the canonical per-round training energies are tens of mWh, and the
/// "churn" preset's tight battery (6 training rounds) plus sub-unit
/// harvest guarantees mid-run dropouts within a few rounds.
sim::EngineConfig churn_engine_config() {
  sim::EngineConfig config;
  config.scenario = scenario::make_config("churn");
  return config;
}

TEST(ScenarioEngine, StarvedNodesFreezeWhileFedNodesKeepLearning) {
  // Two-series trace: even nodes get an effectively infinite harvest,
  // odd nodes get nothing — they drain their 3-round battery, go down,
  // and (with zero harvest, re-entry unreachable) stay down forever.
  // Their model bytes must freeze exactly while the fed half keeps
  // training and mixing through the masked aggregation path.
  Fixture fixture(8, 3);
  const core::DpsgdScheduler scheduler;
  sim::EngineConfig config;
  config.scenario.enabled = true;
  config.scenario.harvest = HarvestKind::kTrace;
  config.scenario.trace = std::make_shared<const HarvestTrace>(
      parse("time,node,harvest_mwh\n0,0,1000000\n0,1,0\n"));
  config.scenario.battery_rounds = 3.0;
  config.scenario.initial_soc = 1.0;
  config.scenario.dropout_soc = 0.1;
  config.scenario.reentry_soc = 0.5;
  sim::RoundEngine engine = fixture.make_engine(scheduler, config);
  ASSERT_NE(engine.scenario(), nullptr);

  engine.run_rounds(6);
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    EXPECT_EQ(engine.scenario()->alive(i), i % 2 == 0) << "node " << i;
  }
  std::vector<std::vector<float>> frozen(engine.num_nodes());
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    const auto row = engine.node_parameters().row(i);
    frozen[i].assign(row.begin(), row.end());
  }
  engine.run_rounds(6);
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    const auto row = engine.node_parameters().row(i);
    const bool identical = std::memcmp(frozen[i].data(), row.data(),
                                       row.size() * sizeof(float)) == 0;
    if (i % 2 == 1) {
      EXPECT_TRUE(identical) << "starved node " << i << " mutated while down";
    } else {
      EXPECT_FALSE(identical) << "fed node " << i << " stopped learning";
    }
  }
  EXPECT_GT(engine.scenario()->down_steps_total(), 0u);
  EXPECT_LT(engine.scenario()->mean_availability(), 1.0);
  EXPECT_GT(engine.scenario()->harvested_mwh_total(), 0.0);
}

TEST(ScenarioEngine, ChurnedRunIsThreadCountInvariant) {
  Fixture fixture(8, 3);
  const core::SkipTrainScheduler scheduler(2, 1);
  for (const std::size_t sparse_k : {std::size_t{0}, std::size_t{7}}) {
    SCOPED_TRACE("sparse_k=" + std::to_string(sparse_k));
    sim::EngineConfig config = churn_engine_config();
    config.sparse_exchange_k = sparse_k;

    sim::RoundEngine parallel_engine = fixture.make_engine(scheduler, config);
    parallel_engine.run_rounds(16);

    sim::RoundEngine serial_engine = fixture.make_engine(scheduler, config);
    {
      util::ThreadPool::ScopedForceSerial force;
      serial_engine.run_rounds(16);
    }
    EXPECT_TRUE(bytes_equal(parallel_engine.node_parameters(),
                            serial_engine.node_parameters()));
    // The invariance claim is empty unless churn actually fired and the
    // masked aggregation path ran.
    EXPECT_GT(parallel_engine.scenario()->down_steps_total(), 0u);
    EXPECT_EQ(parallel_engine.scenario()->down_steps_total(),
              serial_engine.scenario()->down_steps_total());
    EXPECT_EQ(parallel_engine.scenario()->brownouts_total(),
              serial_engine.scenario()->brownouts_total());
  }
}

TEST(ScenarioEngine, AlwaysPoweredScenarioMatchesBaselineBitwise) {
  // A scenario that can never take a node down must leave the model bytes
  // exactly as the scenario-free engine computes them — the all-up fast
  // path is the pre-scenario kernel, not a lookalike.
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::EngineConfig powered;
  powered.scenario = scenario::make_config("solar");
  powered.scenario.battery_rounds = 1e6;  // effectively infinite battery
  powered.scenario.dropout_soc = 0.0;

  sim::RoundEngine baseline = fixture.make_engine(scheduler);
  sim::RoundEngine scenario_run = fixture.make_engine(scheduler, powered);
  baseline.run_rounds(10);
  scenario_run.run_rounds(10);
  ASSERT_NE(scenario_run.scenario(), nullptr);
  EXPECT_EQ(scenario_run.scenario()->down_steps_total(), 0u);
  EXPECT_TRUE(bytes_equal(baseline.node_parameters(),
                          scenario_run.node_parameters()));
}

TEST(ScenarioEngine, KillAnywhereResumeIsBitIdenticalUnderChurn) {
  const std::string path = testing::TempDir() + "scenario_kill.sktf";
  constexpr std::size_t kTotal = 16;
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  const sim::EngineConfig config = churn_engine_config();

  sim::RoundEngine reference = fixture.make_engine(scheduler, config);
  reference.run_rounds(kTotal);
  ASSERT_GT(reference.scenario()->down_steps_total(), 0u);

  for (std::size_t k = 1; k < kTotal; k += 3) {
    SCOPED_TRACE("killed at round " + std::to_string(k));
    sim::RoundEngine victim = fixture.make_engine(scheduler, config);
    victim.run_rounds(k);
    ckpt::save_fleet_image(victim, path);

    sim::RoundEngine resumed = fixture.make_engine(scheduler, config);
    ckpt::restore_fleet_image(resumed, path);
    resumed.run_rounds(kTotal - k);
    EXPECT_TRUE(bytes_equal(reference.node_parameters(),
                            resumed.node_parameters()));
    EXPECT_EQ(reference.scenario()->down_steps_total(),
              resumed.scenario()->down_steps_total());
    EXPECT_EQ(reference.scenario()->harvested_mwh_total(),
              resumed.scenario()->harvested_mwh_total());
  }
}

TEST(ScenarioEngine, ImageFromDifferentScenarioIsRejected) {
  const std::string path = testing::TempDir() + "scenario_identity.sktf";
  Fixture fixture(6, 2);
  const core::DpsgdScheduler scheduler;
  sim::RoundEngine churn_engine =
      fixture.make_engine(scheduler, churn_engine_config());
  churn_engine.run_rounds(3);
  ckpt::save_fleet_image(churn_engine, path);

  // Same construction, different scenario (including none at all).
  sim::EngineConfig solar;
  solar.scenario = scenario::make_config("solar");
  sim::RoundEngine solar_engine = fixture.make_engine(scheduler, solar);
  EXPECT_THROW(ckpt::restore_fleet_image(solar_engine, path),
               std::runtime_error);
  sim::RoundEngine plain_engine = fixture.make_engine(scheduler);
  EXPECT_THROW(ckpt::restore_fleet_image(plain_engine, path),
               std::runtime_error);
}

// --- async engine ----------------------------------------------------------

TEST(ScenarioAsync, DeadFleetOnlyBurnsDormantActivations) {
  Fixture fixture(5, 2);
  const core::DpsgdScheduler scheduler;
  sim::AsyncConfig config;
  config.scenario.enabled = true;
  config.scenario.harvest = HarvestKind::kNone;
  config.scenario.initial_soc = 0.01;  // below dropout from the start
  config.scenario.dropout_soc = 0.1;
  config.scenario.reentry_soc = 0.5;

  sim::AsyncGossipEngine engine = fixture.make_async(scheduler, config);
  const std::vector<float> before(
      engine.node_parameters().flat().begin(),
      engine.node_parameters().flat().end());
  engine.run_until(40.0);
  ASSERT_NE(engine.scenario(), nullptr);
  EXPECT_GT(engine.total_activations(), 0u);
  EXPECT_EQ(engine.total_trainings(), 0u);
  EXPECT_EQ(engine.scenario()->down_steps_total(),
            engine.scenario()->steps_total());
  // Nothing trained, merged, or pushed: every model froze in place.
  EXPECT_EQ(std::memcmp(before.data(), engine.node_parameters().flat().data(),
                        before.size() * sizeof(float)),
            0);
  EXPECT_EQ(engine.accountant().total_wh(), 0.0);
}

TEST(ScenarioAsync, ChurnedResumeMatchesUninterruptedBitwise) {
  const std::string path = testing::TempDir() + "scenario_async.sktf";
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::AsyncConfig config;
  config.scenario = scenario::make_config("churn");

  sim::AsyncGossipEngine reference = fixture.make_async(scheduler, config);
  reference.run_until(30.0);
  ASSERT_NE(reference.scenario(), nullptr);
  EXPECT_GT(reference.scenario()->down_steps_total(), 0u);

  for (const double cut : {0.8, 7.3, 21.0}) {
    SCOPED_TRACE("killed at t=" + std::to_string(cut));
    sim::AsyncGossipEngine victim = fixture.make_async(scheduler, config);
    victim.run_until(cut);
    ckpt::save_fleet_image(victim, path);

    sim::AsyncGossipEngine resumed = fixture.make_async(scheduler, config);
    ckpt::restore_fleet_image(resumed, path);
    resumed.run_until(30.0);
    EXPECT_TRUE(bytes_equal(reference.node_parameters(),
                            resumed.node_parameters()));
    EXPECT_EQ(reference.total_trainings(), resumed.total_trainings());
    EXPECT_EQ(reference.scenario()->down_steps_total(),
              resumed.scenario()->down_steps_total());
  }
}

// --- sweep surface ---------------------------------------------------------

TEST(ScenarioSweep, ScenarioAxisExpandsInnermost) {
  sweep::SweepGrid grid;
  grid.data.nodes = 4;
  grid.seeds = {1, 2};
  grid.scenarios = {"none", "solar", "churn"};
  EXPECT_EQ(grid.trial_count(), 6u);
  const auto trials = grid.expand();
  ASSERT_EQ(trials.size(), 6u);
  EXPECT_EQ(trials[0].options.scenario, "none");
  EXPECT_EQ(trials[1].options.scenario, "solar");
  EXPECT_EQ(trials[2].options.scenario, "churn");
  EXPECT_EQ(trials[3].options.scenario, "none");
  EXPECT_EQ(trials[0].options.seed, 1u);
  EXPECT_EQ(trials[3].options.seed, 2u);
  // Fingerprints must separate the scenario axis, or resumable sweeps
  // would adopt another scenario's checkpoints.
  EXPECT_NE(ckpt::trial_fingerprint(trials[0]),
            ckpt::trial_fingerprint(trials[1]));
  EXPECT_NE(std::string(ckpt::trial_fingerprint(trials[1])).find("|scn=solar"),
            std::string::npos);
}

TEST(ScenarioSweep, CsvSchemaGainsColumnsOnlyWhenScenariosRun) {
  const auto& plain = sweep::ResultSink::csv_header(false, false);
  const auto& with_scenario = sweep::ResultSink::csv_header(false, true);
  EXPECT_EQ(std::count(plain.begin(), plain.end(), "scenario"), 0);
  EXPECT_EQ(std::count(plain.begin(), plain.end(), "availability"), 0);
  EXPECT_EQ(std::count(with_scenario.begin(), with_scenario.end(),
                       "scenario"), 1);
  EXPECT_EQ(std::count(with_scenario.begin(), with_scenario.end(),
                       "availability"), 1);
  EXPECT_EQ(with_scenario.size(), plain.size() + 2);

  sweep::TrialResult row;
  row.spec.options.scenario = "churn";
  row.result.mean_availability = 0.75;
  const auto cells = sweep::ResultSink::csv_row(row, false, true);
  ASSERT_EQ(cells.size(), with_scenario.size());
  const auto scenario_col = static_cast<std::size_t>(
      std::find(with_scenario.begin(), with_scenario.end(), "scenario") -
      with_scenario.begin());
  const auto avail_col = static_cast<std::size_t>(
      std::find(with_scenario.begin(), with_scenario.end(), "availability") -
      with_scenario.begin());
  EXPECT_EQ(cells[scenario_col], "churn");
  EXPECT_EQ(cells[avail_col], "0.75");

  // Failed rows keep the schema width.
  sweep::TrialResult failed;
  failed.spec.options.scenario = "churn";
  failed.status = sweep::TrialStatus::kFailed;
  failed.error = "boom";
  EXPECT_EQ(sweep::ResultSink::csv_row(failed, false, true).size(),
            with_scenario.size());
}

}  // namespace
}  // namespace skiptrain
