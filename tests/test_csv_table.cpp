#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace skiptrain::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "skiptrain_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"round", "accuracy"});
    csv.write_row(std::vector<std::string>{"1", "0.5"});
    csv.write_row(std::vector<double>{2.0, 0.625});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "round,accuracy\n1,0.5\n2,0.625\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.write_row(std::vector<std::string>{"only-one"}),
               std::runtime_error);
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("multi\nline"), "\"multi\nline\"");
  // Regression: '\r' must trigger quoting too — RFC 4180 rows end in
  // CRLF, so an unquoted carriage return splits the row.
  EXPECT_EQ(CsvWriter::escape("carriage\rreturn"), "\"carriage\rreturn\"");
  EXPECT_EQ(CsvWriter::escape("crlf\r\npair"), "\"crlf\r\npair\"");
}

TEST(CsvFormat, FormatDouble) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1510.04), "1510.04");
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(Table, RendersAlignedRows) {
  TablePrinter table({"Algorithm", "Energy"});
  table.add_row({"SkipTrain", "755.02"});
  table.add_row({"D-PSGD", "1510.04"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("| Algorithm | Energy  |"), std::string::npos);
  EXPECT_NE(rendered.find("| SkipTrain | 755.02  |"), std::string::npos);
  EXPECT_NE(rendered.find("| D-PSGD    | 1510.04 |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(rendered.find("|--"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::runtime_error);
}

TEST(Grid, RendersRowsAndColumns) {
  const std::string grid = render_grid(
      "validation accuracy", {"G=1", "G=2"}, {"1", "2", "3"},
      {{59.7, 61.4, 63.1}, {60.6, 64.1, 65.0}}, 1);
  EXPECT_NE(grid.find("validation accuracy"), std::string::npos);
  EXPECT_NE(grid.find("59.7"), std::string::npos);
  EXPECT_NE(grid.find("65.0"), std::string::npos);
  EXPECT_NE(grid.find("G=2"), std::string::npos);
}

TEST(Grid, ShapeMismatchThrows) {
  EXPECT_THROW(render_grid("t", {"r1"}, {"c1"}, {{1.0, 2.0}}),
               std::runtime_error);
  EXPECT_THROW(render_grid("t", {"r1", "r2"}, {"c1"}, {{1.0}}),
               std::runtime_error);
}

TEST(Fixed, Formatting) {
  EXPECT_EQ(fixed(66.123, 1), "66.1");
  EXPECT_EQ(fixed(66.0, 2), "66.00");
  EXPECT_EQ(fixed(-1.25, 2), "-1.25");
}

}  // namespace
}  // namespace skiptrain::util
