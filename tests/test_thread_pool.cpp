#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace skiptrain::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool(2);
  std::vector<int> touched(100, 0);
  pool.parallel_for(10, 20, [&](std::size_t i) { touched[i] = 1; });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], (i >= 10 && i < 20) ? 1 : 0);
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(0, 100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::size_t covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_LE(chunks.size(), 3u);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    // Re-entrant call from a worker must not deadlock.
    pool.parallel_for(0, 10, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0L);
  std::atomic<long> parallel_sum{0};
  pool.parallel_for(0, values.size(), [&](std::size_t i) {
    parallel_sum.fetch_add(values[i]);
  });
  const long serial_sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(parallel_sum.load(), serial_sum);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> detected{false};
  pool.submit([&] { detected = pool.on_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(detected.load());
}

TEST(ThreadPool, SizeMatchesConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForRethrowsBodyExceptionOnCaller) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          executed.fetch_add(1);
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable: the counter reached zero (no deadlock) and a
  // follow-up loop completes normally.
  std::atomic<int> after{0};
  pool.parallel_for(0, 10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
  EXPECT_GT(executed.load(), 0);
}

TEST(ThreadPool, ScopedForceSerialPinsLoopsToCallingThread) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::force_serial_active());
  const auto self = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(16);
  {
    ThreadPool::ScopedForceSerial guard;
    EXPECT_TRUE(ThreadPool::force_serial_active());
    // Even a foreign pool's parallel_for must stay on this thread.
    pool.parallel_for(0, ran_on.size(), [&](std::size_t i) {
      ran_on[i] = std::this_thread::get_id();
    });
    {
      ThreadPool::ScopedForceSerial nested;  // nests and restores correctly
      EXPECT_TRUE(ThreadPool::force_serial_active());
    }
    EXPECT_TRUE(ThreadPool::force_serial_active());
  }
  EXPECT_FALSE(ThreadPool::force_serial_active());
  for (const auto id : ran_on) EXPECT_EQ(id, self);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace skiptrain::util
