// Fault-injection layer: CRC32C known-answer vectors, fault-plan parsing
// and validation, stateless draw determinism, wire-frame round-trip and
// exhaustive single-bit corruption rejection, engine-level thread-count
// and kill/resume invariance under active fault plans, duplicate-delivery
// idempotence, IO-fault retry, and multi-generation checkpoint fallback.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "fault/crc32c.hpp"
#include "fault/fault.hpp"
#include "fault/frame.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sweep/sweep.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain {
namespace {

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 / Castagnoli check value for the standard 9-byte vector.
  EXPECT_EQ(fault::crc32c("123456789", 9), 0xe3069283u);
  // Empty input: init xor final.
  EXPECT_EQ(fault::crc32c("", 0), 0x00000000u);
  // 32 zero bytes (iSCSI test vector).
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(fault::crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // 32 0xff bytes (iSCSI test vector).
  const std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(fault::crc32c(ones.data(), ones.size()), 0x62a8ab43u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the wire frame integrity check of skiptrain";
  const std::uint32_t oneshot = fault::crc32c(data.data(), data.size());
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, data.size() - 1,
                                  data.size()}) {
    std::uint32_t crc = fault::kCrc32cInit;
    crc = fault::crc32c_update(crc, data.data(), split);
    crc = fault::crc32c_update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(fault::crc32c_finish(crc), oneshot) << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlipInASmallBuffer) {
  std::vector<std::uint8_t> buffer(48);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint32_t reference = fault::crc32c(buffer.data(), buffer.size());
  for (std::size_t bit = 0; bit < buffer.size() * 8; ++bit) {
    buffer[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(fault::crc32c(buffer.data(), buffer.size()), reference)
        << "bit " << bit;
    buffer[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

// --- fault-plan parsing ----------------------------------------------------

TEST(FaultPlan, EmptyAndNoneDisableEverything) {
  for (const char* spec : {"", "none"}) {
    const fault::FaultPlan plan = fault::make_plan(spec);
    EXPECT_FALSE(plan.enabled) << spec;
    EXPECT_FALSE(plan.link_faults());
    EXPECT_FALSE(plan.crash_faults());
    EXPECT_FALSE(plan.io_faults());
    EXPECT_EQ(plan.config_hash(), 0u);
  }
  EXPECT_EQ(fault::fault_token(""), "none");
  EXPECT_EQ(fault::fault_token("none"), "none");
  EXPECT_EQ(fault::fault_token("drop:0.1"), "drop:0.1");
}

TEST(FaultPlan, FullSpecParsesEveryKnob) {
  const fault::FaultPlan plan = fault::make_plan(
      "drop:0.05,corrupt:0.01,dup:0.02,crash:0.004,crash-rounds:5,"
      "io:0.2,io-retries:7");
  EXPECT_TRUE(plan.enabled);
  EXPECT_DOUBLE_EQ(plan.drop_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.dup_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.crash_prob, 0.004);
  EXPECT_EQ(plan.crash_rounds, 5u);
  EXPECT_DOUBLE_EQ(plan.io_fail_prob, 0.2);
  EXPECT_EQ(plan.io_retries, 7u);
  EXPECT_TRUE(plan.link_faults());
  EXPECT_TRUE(plan.crash_faults());
  EXPECT_TRUE(plan.io_faults());
  EXPECT_NE(plan.config_hash(), 0u);
  // The hash separates distinct plans (checkpoint identity depends on it).
  EXPECT_NE(plan.config_hash(), fault::make_plan("drop:0.05").config_hash());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW((void)fault::make_plan("flood:0.1"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("drop"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("drop:"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("drop:zebra"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("drop:1.5"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("drop:-0.1"), std::invalid_argument);
  EXPECT_THROW((void)fault::make_plan("crash:0.1,crash-rounds:0"),
               std::invalid_argument);
}

// --- stateless draws -------------------------------------------------------

TEST(FaultDraws, ArePureFunctionsOfTheirCoordinates) {
  const fault::FaultPlan plan =
      fault::make_plan("drop:0.3,corrupt:0.2,dup:0.25,crash:0.1,io:0.4");
  for (std::uint64_t round = 0; round < 16; ++round) {
    for (std::uint64_t src = 0; src < 4; ++src) {
      for (std::uint64_t dst = 0; dst < 4; ++dst) {
        const fault::LinkDraw a = fault::link_draw(plan, 42, round, src, dst);
        const fault::LinkDraw b = fault::link_draw(plan, 42, round, src, dst);
        EXPECT_EQ(a.drop, b.drop);
        EXPECT_EQ(a.corrupt, b.corrupt);
        EXPECT_EQ(a.duplicate, b.duplicate);
      }
    }
  }
  EXPECT_EQ(fault::node_down(plan, 42, 3, 9), fault::node_down(plan, 42, 3, 9));
  EXPECT_EQ(fault::io_attempt_fails(plan, 42, 77, 1),
            fault::io_attempt_fails(plan, 42, 77, 1));
}

TEST(FaultDraws, ExtremeProbabilitiesAreExact) {
  const fault::FaultPlan always = fault::make_plan("drop:1.0,crash:1.0,io:1.0");
  // An all-zero spec fails validate() (it enables nothing), so build the
  // degenerate plan directly to pin the p=0 branch of every draw.
  fault::FaultPlan never;
  never.enabled = true;
  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_TRUE(fault::link_draw(always, 1, t, 0, 1).drop);
    EXPECT_TRUE(fault::node_down(always, 1, 0, t));
    EXPECT_TRUE(fault::io_attempt_fails(always, 1, 5, t));
    const fault::LinkDraw none = fault::link_draw(never, 1, t, 0, 1);
    EXPECT_FALSE(none.drop || none.corrupt || none.duplicate);
    EXPECT_FALSE(fault::node_down(never, 1, 0, t));
    EXPECT_FALSE(fault::io_attempt_fails(never, 1, 5, t));
  }
  // A drop short-circuits the corrupt/dup draws — a lost message cannot
  // also be corrupted or duplicated.
  const fault::FaultPlan all = fault::make_plan("drop:1.0,corrupt:1.0,dup:1.0");
  const fault::LinkDraw draw = fault::link_draw(all, 1, 0, 0, 1);
  EXPECT_TRUE(draw.drop);
  EXPECT_FALSE(draw.corrupt);
  EXPECT_FALSE(draw.duplicate);
}

TEST(FaultDraws, EmpiricalRatesTrackTheConfiguredProbabilities) {
  const fault::FaultPlan plan = fault::make_plan("drop:0.25");
  std::size_t drops = 0;
  const std::size_t trials = 4000;
  for (std::size_t i = 0; i < trials; ++i) {
    if (fault::link_draw(plan, 7, i / 64, i % 8, (i / 8) % 8).drop) ++drops;
  }
  const double rate = static_cast<double>(drops) / trials;
  EXPECT_GT(rate, 0.20);
  EXPECT_LT(rate, 0.30);
}

TEST(FaultDraws, CrashOutagesLastCrashRounds) {
  // With crash_rounds = R, node_down(t) is true iff a crash was drawn at
  // any of rounds t-R+1..t, so outages are contiguous windows of >= R.
  const fault::FaultPlan plan =
      fault::make_plan("crash:0.08,crash-rounds:4");
  std::size_t run_length = 0;
  bool any_outage = false;
  for (std::uint64_t t = 0; t < 400; ++t) {
    if (fault::node_down(plan, 11, 2, t)) {
      ++run_length;
      any_outage = true;
    } else {
      if (run_length != 0) EXPECT_GE(run_length, 4u);
      run_length = 0;
    }
  }
  EXPECT_TRUE(any_outage);
}

// --- wire frames -----------------------------------------------------------

quant::QuantizedRow encoded_row(quant::Codec kind, std::size_t dim,
                                std::uint64_t round = 3) {
  const auto codec = quant::make_codec(kind, 42);
  codec->begin_round(round);
  std::vector<float> row(dim);
  util::Rng rng(9);
  rng.fill_normal(row, 0.0f, 1.0f);
  quant::QuantizedRow wire;
  codec->encode(row, wire);
  return wire;
}

void expect_rows_equal(const quant::QuantizedRow& a,
                       const quant::QuantizedRow& b) {
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.dim, b.dim);
  EXPECT_EQ(a.fp32, b.fp32);
  EXPECT_EQ(a.half, b.half);
  EXPECT_EQ(a.codes, b.codes);
  EXPECT_EQ(a.block_lo, b.block_lo);
  EXPECT_EQ(a.block_scale, b.block_scale);
}

TEST(WireFrame, RoundTripsEveryCodecBitExactly) {
  for (const quant::Codec kind : quant::all_codecs()) {
    SCOPED_TRACE(quant::codec_token(kind));
    const quant::QuantizedRow row = encoded_row(kind, 96);
    std::vector<std::uint8_t> frame;
    fault::encode_frame(row, frame);
    EXPECT_TRUE(fault::verify_frame(frame));
    quant::QuantizedRow decoded;
    ASSERT_TRUE(fault::decode_frame(frame, 96, decoded));
    expect_rows_equal(row, decoded);
  }
}

TEST(WireFrame, EverySingleBitFlipIsRejected) {
  // The exhaustive corruption matrix: whichever bit an injected fault
  // flips — header, length, CRC, or payload — the receiver must reject
  // the frame. CRC32C detects all single-bit errors by construction;
  // this pins the implementation (and the header checks) to that math.
  const quant::QuantizedRow row = encoded_row(quant::Codec::kIdentity, 16);
  std::vector<std::uint8_t> frame;
  fault::encode_frame(row, frame);
  ASSERT_TRUE(fault::verify_frame(frame));
  quant::QuantizedRow decoded;
  for (std::uint64_t bit = 0; bit < frame.size() * 8; ++bit) {
    fault::flip_bit(frame, bit);
    EXPECT_FALSE(fault::verify_frame(frame)) << "bit " << bit;
    EXPECT_FALSE(fault::decode_frame(frame, 16, decoded)) << "bit " << bit;
    fault::flip_bit(frame, bit);  // restore
  }
  EXPECT_TRUE(fault::verify_frame(frame));
}

TEST(WireFrame, TruncationsAndGarbageAreRejectedNotThrown) {
  const quant::QuantizedRow row = encoded_row(quant::Codec::kInt8, 64);
  std::vector<std::uint8_t> frame;
  fault::encode_frame(row, frame);
  quant::QuantizedRow decoded;
  for (std::size_t cut = 0; cut < frame.size(); cut += 3) {
    const std::span<const std::uint8_t> prefix(frame.data(), cut);
    EXPECT_FALSE(fault::verify_frame(prefix)) << "cut " << cut;
    EXPECT_FALSE(fault::decode_frame(prefix, 64, decoded)) << "cut " << cut;
  }
  // Trailing garbage after a valid frame.
  std::vector<std::uint8_t> padded = frame;
  padded.push_back(0xab);
  EXPECT_FALSE(fault::verify_frame(padded));
  // A dim beyond the receiver's bound is refused even with a valid CRC.
  EXPECT_FALSE(fault::decode_frame(frame, 63, decoded));
}

TEST(WireFrame, CorruptBitIndexIsInRangeAndSeedDerived) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    const std::uint64_t bit = fault::corrupt_bit_index(42, round, 1, 2, 133);
    EXPECT_LT(bit, 133u * 8u);
    EXPECT_EQ(bit, fault::corrupt_bit_index(42, round, 1, 2, 133));
  }
}

// --- engine integration ----------------------------------------------------

struct Fixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  explicit Fixture(std::size_t nodes, std::size_t degree,
                   std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 12;
    config.test_pool = 40;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);

    prototype = nn::make_mlp(config.feature_dim, {8}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);

    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, degree, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  energy::EnergyAccountant make_accountant(
      quant::Codec codec = quant::Codec::kIdentity) const {
    std::vector<std::size_t> degrees(fleet.num_nodes());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = topology.degree(i);
    }
    return energy::EnergyAccountant(fleet, quant::comm_model_for(codec),
                                    89834, std::move(degrees));
  }

  sim::RoundEngine make_engine(const core::RoundScheduler& scheduler,
                               sim::EngineConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            make_accountant(config.exchange_codec), config);
  }

  sim::AsyncGossipEngine make_async(const core::RoundScheduler& scheduler,
                                    sim::AsyncConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    std::vector<double> seconds(fleet.num_nodes());
    for (std::size_t i = 0; i < seconds.size(); ++i) {
      seconds[i] = 1.0 + 0.31 * static_cast<double>(i % 5);
    }
    return sim::AsyncGossipEngine(prototype, data, topology, scheduler,
                                  make_accountant(config.exchange_codec),
                                  std::move(seconds), config);
  }
};

bool bytes_equal(plane::ConstMatrixView a, plane::ConstMatrixView b) {
  if (a.rows != b.rows || a.dim != b.dim) return false;
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.rows * a.dim * sizeof(float)) == 0;
}

void expect_stats_equal(const fault::FaultStats& a,
                        const fault::FaultStats& b) {
  EXPECT_EQ(a.attempted_deliveries, b.attempted_deliveries);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.corrupt, b.corrupt);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.crash_down_rounds, b.crash_down_rounds);
}

struct FaultVariant {
  const char* label;
  const char* faults;
  quant::Codec codec;
  std::size_t sparse_k;
};

const FaultVariant kFaultVariants[] = {
    {"dense-identity", "drop:0.1,corrupt:0.05,dup:0.1,crash:0.03",
     quant::Codec::kIdentity, 0},
    {"dense-int8d", "drop:0.1,corrupt:0.05,dup:0.1",
     quant::Codec::kInt8Dithered, 0},
    {"sparse-identity", "drop:0.15,corrupt:0.05", quant::Codec::kIdentity, 5},
    {"sparse-int8", "drop:0.1,dup:0.2,crash:0.05", quant::Codec::kInt8, 7},
};

class FaultedEngine : public ::testing::TestWithParam<FaultVariant> {};

TEST_P(FaultedEngine, SerialAndParallelRunsAreBitIdentical) {
  const FaultVariant variant = GetParam();
  Fixture fixture(8, 3);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::EngineConfig config;
  config.exchange_codec = variant.codec;
  config.sparse_exchange_k = variant.sparse_k;
  config.faults = fault::make_plan(variant.faults);

  sim::RoundEngine parallel = fixture.make_engine(scheduler, config);
  parallel.run_rounds(6);

  sim::RoundEngine serial = fixture.make_engine(scheduler, config);
  {
    util::ThreadPool::ScopedForceSerial force;
    serial.run_rounds(6);
  }
  EXPECT_TRUE(
      bytes_equal(parallel.node_parameters(), serial.node_parameters()));
  expect_stats_equal(parallel.fault_stats(), serial.fault_stats());
  // The chaos actually fired — an accidentally disabled plan would make
  // this test vacuous.
  EXPECT_GT(parallel.fault_stats().attempted_deliveries, 0u);
  EXPECT_GT(parallel.fault_stats().dropped, 0u);
}

TEST_P(FaultedEngine, KillResumeContinuesBitExactlyWithFaultStats) {
  const FaultVariant variant = GetParam();
  const std::string path = testing::TempDir() + "faulted_kill.sktf";
  Fixture fixture(8, 3);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::EngineConfig config;
  config.exchange_codec = variant.codec;
  config.sparse_exchange_k = variant.sparse_k;
  config.faults = fault::make_plan(variant.faults);

  sim::RoundEngine reference = fixture.make_engine(scheduler, config);
  reference.run_rounds(8);

  sim::RoundEngine victim = fixture.make_engine(scheduler, config);
  victim.run_rounds(3);
  ckpt::save_fleet_image(victim, path);

  sim::RoundEngine resumed = fixture.make_engine(scheduler, config);
  ckpt::restore_fleet_image(resumed, path);
  expect_stats_equal(victim.fault_stats(), resumed.fault_stats());
  resumed.run_rounds(5);
  EXPECT_TRUE(
      bytes_equal(reference.node_parameters(), resumed.node_parameters()));
  expect_stats_equal(reference.fault_stats(), resumed.fault_stats());
}

INSTANTIATE_TEST_SUITE_P(Variants, FaultedEngine,
                         ::testing::ValuesIn(kFaultVariants));

TEST(FaultedEngine, FaultPlanIsPartOfTheImageIdentity) {
  // An image checkpointed under one fault plan must not restore into an
  // engine running a different plan — the fault schedule is part of the
  // run's configuration.
  const std::string path = testing::TempDir() + "faulted_identity.sktf";
  Fixture fixture(6, 2);
  const core::DpsgdScheduler scheduler;
  sim::EngineConfig faulted;
  faulted.faults = fault::make_plan("drop:0.2");
  sim::RoundEngine source = fixture.make_engine(scheduler, faulted);
  source.run_rounds(2);
  ckpt::save_fleet_image(source, path);

  sim::EngineConfig other;
  other.faults = fault::make_plan("drop:0.3");
  sim::RoundEngine mismatched = fixture.make_engine(scheduler, other);
  EXPECT_THROW(ckpt::restore_fleet_image(mismatched, path),
               std::runtime_error);
  sim::RoundEngine lossless = fixture.make_engine(scheduler);
  EXPECT_THROW(ckpt::restore_fleet_image(lossless, path),
               std::runtime_error);
}

TEST(FaultedEngine, DuplicateDeliveriesAreIdempotent) {
  // dup:1.0 delivers every message twice; an engine that aggregated the
  // second copy would double every neighbor's weight. Compare against a
  // plan whose probabilities are too small to ever fire — both run the
  // framed/difference-form path, so the parameters must match bitwise.
  Fixture fixture(8, 3);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::EngineConfig dup_config;
  dup_config.faults = fault::make_plan("dup:1.0");
  sim::RoundEngine duplicated = fixture.make_engine(scheduler, dup_config);
  duplicated.run_rounds(6);

  sim::EngineConfig quiet_config;
  quiet_config.faults = fault::make_plan("dup:1e-12");
  sim::RoundEngine quiet = fixture.make_engine(scheduler, quiet_config);
  quiet.run_rounds(6);

  EXPECT_TRUE(
      bytes_equal(duplicated.node_parameters(), quiet.node_parameters()));
  EXPECT_GT(duplicated.fault_stats().duplicated, 0u);
  EXPECT_EQ(duplicated.fault_stats().duplicated,
            duplicated.fault_stats().attempted_deliveries);
  EXPECT_EQ(quiet.fault_stats().duplicated, 0u);
}

TEST(FaultedEngine, TotalLossRevertsEveryNodeToSelf) {
  // drop:1.0 loses every message: with all neighbor mass reverting to
  // self, gossip must be a no-op — each node trains alone.
  Fixture fixture(6, 2);
  const core::DpsgdScheduler scheduler;
  sim::EngineConfig config;
  config.faults = fault::make_plan("drop:1.0");
  sim::RoundEngine isolated = fixture.make_engine(scheduler, config);
  isolated.run_rounds(4);
  EXPECT_EQ(isolated.fault_stats().dropped,
            isolated.fault_stats().attempted_deliveries);

  // An explicitly disconnected run: same training, no aggregation. The
  // masked difference form with every link down reduces to exactly this.
  sim::RoundEngine loner = fixture.make_engine(scheduler, config);
  {
    // Same engine type and plan — just re-run to confirm determinism of
    // the fully-degraded path itself.
    loner.run_rounds(4);
    EXPECT_TRUE(
        bytes_equal(isolated.node_parameters(), loner.node_parameters()));
  }
}

TEST(FaultedEngine, AsyncEngineDegradesAndResumesBitExactly) {
  const std::string path = testing::TempDir() + "faulted_async.sktf";
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::AsyncConfig config;
  config.faults = fault::make_plan("drop:0.15,corrupt:0.1,dup:0.2,crash:0.05");

  sim::AsyncGossipEngine reference = fixture.make_async(scheduler, config);
  reference.run_until(20.0);
  EXPECT_GT(reference.fault_stats().attempted_deliveries, 0u);
  EXPECT_GT(reference.fault_stats().dropped, 0u);

  sim::AsyncGossipEngine victim = fixture.make_async(scheduler, config);
  victim.run_until(7.3);
  ckpt::save_fleet_image(victim, path);

  sim::AsyncGossipEngine resumed = fixture.make_async(scheduler, config);
  ckpt::restore_fleet_image(resumed, path);
  expect_stats_equal(victim.fault_stats(), resumed.fault_stats());
  resumed.run_until(20.0);
  EXPECT_TRUE(
      bytes_equal(reference.node_parameters(), resumed.node_parameters()));
  expect_stats_equal(reference.fault_stats(), resumed.fault_stats());
}

// --- run_experiment + sweep surface ----------------------------------------

sweep::SweepGrid tiny_grid() {
  sweep::SweepGrid grid;
  grid.name = "fault";
  grid.data.nodes = 8;
  grid.data.samples_per_node = 6;
  grid.data.test_pool = 40;
  grid.base.total_rounds = 6;
  grid.base.local_steps = 1;
  grid.base.batch_size = 4;
  grid.base.eval_every = 2;
  grid.base.eval_max_samples = 20;
  grid.base.degree = 2;
  return grid;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FaultExperiment, NoneSpecMatchesUnsetBitwise) {
  // faults="none" must not perturb a single byte of a fault-free run —
  // the whole layer stays behind the enabled flag.
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);
  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.gamma_train = 1;
  options.gamma_sync = 1;

  const sim::ExperimentResult unset =
      sim::run_experiment(workload->data, workload->prototype, options);
  options.faults = "none";
  const sim::ExperimentResult none =
      sim::run_experiment(workload->data, workload->prototype, options);
  EXPECT_EQ(unset.final_mean_accuracy, none.final_mean_accuracy);
  EXPECT_EQ(unset.final_per_node_accuracy, none.final_per_node_accuracy);
  EXPECT_EQ(none.delivery_rate, 1.0);
  EXPECT_EQ(none.dropped_messages, 0u);
}

TEST(FaultExperiment, FaultTelemetryReachesTheResult) {
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);
  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kDpsgd;
  options.faults = "drop:0.2,corrupt:0.1,dup:0.1,crash:0.05";
  const sim::ExperimentResult result =
      sim::run_experiment(workload->data, workload->prototype, options);
  EXPECT_GT(result.dropped_messages, 0u);
  EXPECT_GT(result.corrupt_messages, 0u);
  EXPECT_GT(result.duplicated_messages, 0u);
  EXPECT_LT(result.delivery_rate, 1.0);
  EXPECT_GT(result.delivery_rate, 0.0);
}

TEST(FaultSweep, FaultsAxisExpandsTrialsAndGatesCsvColumns) {
  sweep::SweepGrid grid = tiny_grid();
  grid.gamma_trains = {1};
  grid.faults = {"none", "drop:0.2"};
  EXPECT_EQ(grid.trial_count(), 2u);

  sweep::SweepRunner runner({.threads = 1});
  const sweep::SweepReport report = runner.run(grid);
  ASSERT_TRUE(report.all_ok());
  const std::string csv = testing::TempDir() + "fault_sweep.csv";
  report.write_csv(csv);
  const std::string bytes = read_file(csv);
  EXPECT_NE(bytes.find(",faults,"), std::string::npos);
  EXPECT_NE(bytes.find(",delivery_rate,"), std::string::npos);
  EXPECT_NE(bytes.find(",drop:0.2,"), std::string::npos);

  // A faultless grid keeps its pre-existing schema byte-for-byte.
  grid.faults = {"none"};
  const sweep::SweepReport plain = runner.run(grid);
  ASSERT_TRUE(plain.all_ok());
  plain.write_csv(csv);
  const std::string plain_bytes = read_file(csv);
  EXPECT_EQ(plain_bytes.find(",faults,"), std::string::npos);
  EXPECT_EQ(plain_bytes.find(",delivery_rate,"), std::string::npos);
}

// --- IO faults + generation fallback ---------------------------------------

TEST(IoFaults, AtomicWriteRetriesDeterministicallyAndEventuallyThrows) {
  const std::string path = testing::TempDir() + "io_fault_target.bin";
  const auto payload = [](std::ostream& out) { out << "payload"; };

  // io:1.0 — every attempt fails; after io_retries extra attempts the
  // failure propagates. The previous file content must survive.
  ckpt::atomic_write(path, payload);
  const std::string before = read_file(path);
  ckpt::IoFaultPolicy always{fault::make_plan("io:1.0,io-retries:2"), 42};
  EXPECT_THROW(ckpt::atomic_write(path, payload, &always),
               std::runtime_error);
  EXPECT_EQ(read_file(path), before);

  // A fallible-but-not-hopeless plan with generous retries succeeds (the
  // draw stream is seed-derived, so this is deterministic, not flaky).
  ckpt::IoFaultPolicy flaky{fault::make_plan("io:0.5,io-retries:16"), 42};
  ckpt::atomic_write(path, [](std::ostream& out) { out << "second"; },
                     &flaky);
  EXPECT_EQ(read_file(path), "second");
}

TEST(Generations, RotateAndEnumerateAndRemove) {
  const std::string dir = testing::TempDir() + "generations_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/image.sktf";
  const auto write = [&](const std::string& text) {
    std::ofstream(path, std::ios::trunc) << text;
  };

  const std::vector<std::string> candidates =
      ckpt::generation_paths(path, 3);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], path);
  EXPECT_EQ(candidates[1], path + ".g1");
  EXPECT_EQ(candidates[2], path + ".g2");
  // keep = 0 behaves like 1 (the single-image configuration).
  EXPECT_EQ(ckpt::generation_paths(path, 0).size(), 1u);

  // Rotation shifts newest -> .g1 -> .g2; the oldest falls off.
  write("gen-A");
  ckpt::rotate_generations(path, 3);
  write("gen-B");
  ckpt::rotate_generations(path, 3);
  write("gen-C");
  ckpt::rotate_generations(path, 3);
  write("gen-D");
  EXPECT_EQ(read_file(path), "gen-D");
  EXPECT_EQ(read_file(path + ".g1"), "gen-C");
  EXPECT_EQ(read_file(path + ".g2"), "gen-B");
  EXPECT_FALSE(std::filesystem::exists(path + ".g3"));  // gen-A fell off

  // keep <= 1 never creates siblings.
  const std::string single = dir + "/single.sktf";
  std::ofstream(single, std::ios::trunc) << "only";
  ckpt::rotate_generations(single, 1);
  EXPECT_FALSE(std::filesystem::exists(single + ".g1"));

  ckpt::remove_generations(path, 3);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".g1"));
  EXPECT_FALSE(std::filesystem::exists(path + ".g2"));
}

TEST(Generations, ResumeFallsBackPastCorruptImagesByteIdentically) {
  const std::string image = testing::TempDir() + "gen_fallback.sktf";
  ckpt::remove_generations(image, 4);
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);

  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.gamma_train = 1;
  options.gamma_sync = 1;
  options.faults = "drop:0.1";
  options.checkpoint_path = image;
  options.checkpoint_every = 2;
  options.keep_generations = 3;

  const sim::ExperimentResult full =
      sim::run_experiment(workload->data, workload->prototype, options);
  // Rounds = 6, checkpoint_every = 2, final round never written: images
  // at rounds 4 (newest) and 2 (.g1).
  ASSERT_TRUE(std::filesystem::exists(image));
  ASSERT_TRUE(std::filesystem::exists(image + ".g1"));
  EXPECT_EQ(ckpt::probe_fleet_image(image).round, 4u);
  EXPECT_EQ(ckpt::probe_fleet_image(image + ".g1").round, 2u);

  const auto corrupt_file = [](const std::string& path) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size / 2);
    file.write("\xff", 1);
  };

  const auto run_resumed = [&] {
    sim::RunOptions resumed = options;
    resumed.resume = true;
    return sim::run_experiment(workload->data, workload->prototype, resumed);
  };
  const auto expect_matches_full = [&](const sim::ExperimentResult& result) {
    EXPECT_EQ(result.final_mean_accuracy, full.final_mean_accuracy);
    EXPECT_EQ(result.final_per_node_accuracy, full.final_per_node_accuracy);
    EXPECT_EQ(result.dropped_messages, full.dropped_messages);
    EXPECT_EQ(result.recorder.records().size(),
              full.recorder.records().size());
  };

  // Newest corrupt -> falls back to .g1 (round 2), recomputes 4 rounds.
  corrupt_file(image);
  expect_matches_full(run_resumed());

  // Both generations corrupt -> fresh run, same bytes, no exception.
  corrupt_file(image);
  corrupt_file(image + ".g1");
  expect_matches_full(run_resumed());
}

}  // namespace
}  // namespace skiptrain
