// Round-engine semantics: aggregation invariants, budget enforcement,
// determinism, and energy bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "metrics/consensus.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/engine.hpp"

namespace skiptrain::sim {
namespace {

/// Sync-only scheduler: isolates the aggregation step for invariant tests.
class SyncOnlyScheduler final : public core::RoundScheduler {
 public:
  std::string name() const override { return "sync-only"; }
  core::RoundKind round_kind(std::size_t) const override {
    return core::RoundKind::kSynchronization;
  }
  bool should_train(std::size_t, std::size_t, std::size_t) const override {
    return false;
  }
};

struct Fixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  explicit Fixture(std::size_t nodes, std::size_t degree,
                   std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 30;
    config.test_pool = 200;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);

    prototype = nn::make_mlp(config.feature_dim, {16}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);

    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, degree, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  energy::EnergyAccountant make_accountant() const {
    std::vector<std::size_t> degrees(fleet.num_nodes());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = topology.degree(i);
    }
    return energy::EnergyAccountant(fleet, energy::CommModel{}, 89834,
                                    std::move(degrees));
  }

  RoundEngine make_engine(const core::RoundScheduler& scheduler,
                          EngineConfig config = {}) const {
    return RoundEngine(prototype, data, mixing, scheduler, make_accountant(),
                       config);
  }
};

/// Mean parameter vector across nodes (plane rows or owned vectors).
std::vector<double> global_mean(plane::ConstMatrixView params) {
  std::vector<double> mean(params.dim, 0.0);
  for (std::size_t r = 0; r < params.rows; ++r) {
    const auto p = params.row(r);
    for (std::size_t i = 0; i < p.size(); ++i) mean[i] += p[i];
  }
  for (auto& v : mean) v /= static_cast<double>(params.rows);
  return mean;
}

std::vector<double> global_mean(const std::vector<std::vector<float>>& params) {
  std::vector<double> mean(params.front().size(), 0.0);
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size(); ++i) mean[i] += p[i];
  }
  for (auto& v : mean) v /= static_cast<double>(params.size());
  return mean;
}

TEST(Engine, SyncRoundPreservesGlobalAverage) {
  Fixture fixture(12, 4);
  const SyncOnlyScheduler scheduler;
  RoundEngine engine = fixture.make_engine(scheduler);

  // Give every node distinct parameters so averaging is non-trivial.
  util::Rng rng(9);
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  // Refresh snapshots by running one sync round and compare means.
  std::vector<std::vector<float>> before(engine.num_nodes());
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    before[i] = engine.model(i).parameters_flat();
  }
  const auto mean_before = global_mean(before);

  engine.run_round();
  const auto mean_after = global_mean(engine.node_parameters());

  ASSERT_EQ(mean_before.size(), mean_after.size());
  for (std::size_t i = 0; i < mean_before.size(); ++i) {
    EXPECT_NEAR(mean_before[i], mean_after[i], 1e-4);
  }
}

TEST(Engine, SyncRoundsShrinkConsensusDistance) {
  Fixture fixture(16, 4);
  const SyncOnlyScheduler scheduler;
  RoundEngine engine = fixture.make_engine(scheduler);

  util::Rng rng(10);
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  engine.run_round();
  const double d1 = metrics::consensus_distance(engine.node_parameters());
  engine.run_rounds(5);
  const double d6 = metrics::consensus_distance(engine.node_parameters());
  EXPECT_LT(d6, d1 * 0.5);  // gossip contracts disagreement geometrically
}

TEST(Engine, IdenticalModelsAreFixedPointOfSync) {
  Fixture fixture(8, 4);
  const SyncOnlyScheduler scheduler;
  RoundEngine engine = fixture.make_engine(scheduler);
  const std::vector<float> initial = fixture.prototype.parameters_flat();
  engine.run_rounds(3);
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    const auto& params = engine.node_parameters()[i];
    for (std::size_t k = 0; k < params.size(); ++k) {
      EXPECT_NEAR(params[k], initial[k], 1e-5f);
    }
  }
}

TEST(Engine, AllReduceMatrixEqualizesModels) {
  Fixture fixture(8, 4);
  const SyncOnlyScheduler scheduler;
  const graph::MixingMatrix all_reduce = graph::MixingMatrix::all_reduce(8);
  RoundEngine engine(fixture.prototype, fixture.data, all_reduce, scheduler,
                     fixture.make_accountant(), EngineConfig{});
  util::Rng rng(11);
  std::vector<std::vector<float>> initial(engine.num_nodes());
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    initial[i].resize(fixture.prototype.num_parameters());
    rng.fill_normal(initial[i], 0.0f, 1.0f);
    engine.model(i).set_parameters(initial[i]);
  }
  const auto mean = global_mean(initial);

  engine.run_round();
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    const auto& params = engine.node_parameters()[i];
    for (std::size_t k = 0; k < params.size(); ++k) {
      EXPECT_NEAR(params[k], mean[k], 1e-4);
    }
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  const core::SkipTrainScheduler scheduler(2, 2);
  Fixture fixture(8, 4);

  RoundEngine engine_a = fixture.make_engine(scheduler);
  RoundEngine engine_b = fixture.make_engine(scheduler);
  engine_a.run_rounds(6);
  engine_b.run_rounds(6);

  for (std::size_t i = 0; i < engine_a.num_nodes(); ++i) {
    const auto a = engine_a.node_parameters()[i];
    const auto b = engine_b.node_parameters()[i];
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << i;
  }
}

TEST(Engine, RoundOutcomeReportsKindAndCount) {
  const core::SkipTrainScheduler scheduler(1, 1);
  Fixture fixture(8, 4);
  RoundEngine engine = fixture.make_engine(scheduler);

  // Rounds number from 1 and every Γ-block opens with training: t=1
  // trains ((1-1) mod 2 = 0 < 1), t=2 synchronizes.
  const auto first = engine.run_round();
  EXPECT_EQ(first.kind, core::RoundKind::kTraining);
  EXPECT_EQ(first.nodes_trained, 8u);
  EXPECT_GT(first.mean_local_loss, 0.0);

  const auto second = engine.run_round();
  EXPECT_EQ(second.kind, core::RoundKind::kSynchronization);
  EXPECT_EQ(second.nodes_trained, 0u);
  EXPECT_EQ(engine.rounds_executed(), 2u);
}

TEST(Engine, GreedyNeverExceedsBudget) {
  // Tiny budgets: Greedy must stop training exactly at τ_i.
  Fixture fixture(8, 4);
  const core::GreedyScheduler scheduler;

  std::vector<std::size_t> degrees(8, 4);
  // Budget of 3 rounds for everyone via a custom fleet-like accountant is
  // not directly expressible; instead run long enough that the canonical
  // budgets (272..681) are NOT hit, then verify counts equal rounds.
  RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(5);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(engine.accountant().training_rounds_executed(i), 5u);
  }
}

TEST(Engine, ConstrainedRespectsBudgetCap) {
  // Budgets of 2 rounds: regardless of probabilities, no node may train
  // more than twice.
  Fixture fixture(8, 4);
  const core::SkipTrainConstrainedScheduler scheduler(
      1, 1, 40, std::vector<std::size_t>(8, 2), 13);

  // Custom accountant with budget 2: emulate by consuming canonical budget
  // down to 2 is impractical; instead check the scheduler+engine contract:
  // remaining_budget is forwarded, and once an artificial budget hits zero
  // the node stops. We verify through the scheduler directly.
  std::size_t trained = 0;
  std::size_t budget = 2;
  for (std::size_t t = 1; t <= 40; ++t) {
    if (scheduler.should_train(t, 0, budget)) {
      ++trained;
      --budget;
    }
  }
  EXPECT_LE(trained, 2u);
}

TEST(Engine, EnergyBookkeepingMatchesClosedForm) {
  Fixture fixture(8, 4);
  const core::DpsgdScheduler scheduler;
  RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(10);

  double expected_train_mwh = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    expected_train_mwh += fixture.fleet.training_energy_mwh(i) * 10.0;
  }
  EXPECT_NEAR(engine.accountant().total_training_wh(),
              expected_train_mwh / 1000.0, 1e-9);
  EXPECT_GT(engine.accountant().total_comm_wh(), 0.0);

  // SkipTrain(1,1) over the same horizon must consume half the training
  // energy (5 of 10 rounds train).
  const core::SkipTrainScheduler skip(1, 1);
  RoundEngine engine_skip = fixture.make_engine(skip);
  engine_skip.run_rounds(10);
  EXPECT_NEAR(engine_skip.accountant().total_training_wh(),
              engine.accountant().total_training_wh() / 2.0, 1e-9);
  // Communication energy is identical: sharing happens every round.
  EXPECT_NEAR(engine_skip.accountant().total_comm_wh(),
              engine.accountant().total_comm_wh(), 1e-12);
}

TEST(Engine, CompressedWireVolumeRoundsToNearest) {
  // Regression: the k/dim wire fraction used to be floored via
  // static_cast, so a k=1 exchange of a small model could bill 1 (or even
  // 0) effective parameters instead of the rounded wire volume.
  Fixture fixture(8, 4);
  // dim = 64*10 + 10 = 650; billed size 975 -> k=1 is 1.5 params, which
  // must round to 2, not floor to 1.
  const nn::Sequential prototype = nn::make_softmax_regression(64, 10);
  const std::size_t billed_params = 975;
  std::vector<std::size_t> degrees(8);
  for (std::size_t i = 0; i < 8; ++i) {
    degrees[i] = fixture.topology.degree(i);
  }
  energy::EnergyAccountant accountant(fixture.fleet, energy::CommModel{},
                                      billed_params, std::move(degrees));
  const core::DpsgdScheduler scheduler;
  EngineConfig config;
  config.local_steps = 1;
  config.batch_size = 4;
  config.sparse_exchange_k = 1;
  RoundEngine engine(prototype, fixture.data, fixture.mixing, scheduler,
                     std::move(accountant), config);
  engine.run_round();

  const energy::CommModel comm;
  double expected_wh = 0.0;
  double floored_wh = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    expected_wh +=
        comm.exchange_energy_mwh(2, fixture.topology.degree(i)) / 1000.0;
    floored_wh +=
        comm.exchange_energy_mwh(1, fixture.topology.degree(i)) / 1000.0;
  }
  EXPECT_NEAR(engine.accountant().total_comm_wh(), expected_wh, 1e-15);
  EXPECT_GT(engine.accountant().total_comm_wh(), floored_wh * 1.5);
}

TEST(Engine, MismatchedSizesThrow) {
  Fixture fixture(8, 4);
  const core::DpsgdScheduler scheduler;
  const graph::MixingMatrix wrong = graph::MixingMatrix::all_reduce(9);
  EXPECT_THROW(RoundEngine(fixture.prototype, fixture.data, wrong, scheduler,
                           fixture.make_accountant(), EngineConfig{}),
               std::invalid_argument);
}

TEST(Engine, TrainingChangesParameters) {
  Fixture fixture(8, 4);
  const core::DpsgdScheduler scheduler;
  RoundEngine engine = fixture.make_engine(scheduler);
  const std::vector<float> before = fixture.prototype.parameters_flat();
  engine.run_round();
  double moved = 0.0;
  for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
    const auto& params = engine.node_parameters()[i];
    for (std::size_t k = 0; k < params.size(); ++k) {
      moved += std::abs(params[k] - before[k]);
    }
  }
  EXPECT_GT(moved, 1e-3);
}

}  // namespace
}  // namespace skiptrain::sim
