// Fleet-image checkpointing: round-trip bit-identity across codecs and
// schedulers, kill-at-every-round resume equivalence for both engines,
// the truncated/corrupted-image rejection matrix, and trial-granular
// sweep resume.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "ckpt/trial_store.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sweep/sweep.hpp"

namespace skiptrain {
namespace {

struct Fixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  explicit Fixture(std::size_t nodes, std::size_t degree,
                   std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 12;
    config.test_pool = 40;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);

    prototype = nn::make_mlp(config.feature_dim, {8}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);

    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, degree, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  energy::EnergyAccountant make_accountant(
      quant::Codec codec = quant::Codec::kIdentity) const {
    std::vector<std::size_t> degrees(fleet.num_nodes());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = topology.degree(i);
    }
    return energy::EnergyAccountant(fleet, quant::comm_model_for(codec),
                                    89834, std::move(degrees));
  }

  sim::RoundEngine make_engine(const core::RoundScheduler& scheduler,
                               sim::EngineConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            make_accountant(config.exchange_codec), config);
  }

  sim::AsyncGossipEngine make_async(const core::RoundScheduler& scheduler,
                                    sim::AsyncConfig config = {}) const {
    config.local_steps = 1;
    config.batch_size = 4;
    std::vector<double> seconds(fleet.num_nodes());
    for (std::size_t i = 0; i < seconds.size(); ++i) {
      seconds[i] = 1.0 + 0.31 * static_cast<double>(i % 5);
    }
    return sim::AsyncGossipEngine(prototype, data, topology, scheduler,
                                  make_accountant(config.exchange_codec),
                                  std::move(seconds), config);
  }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

bool bytes_equal(plane::ConstMatrixView a, plane::ConstMatrixView b) {
  if (a.rows != b.rows || a.dim != b.dim) return false;
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.rows * a.dim * sizeof(float)) == 0;
}

void expect_accountants_equal(const energy::EnergyAccountant& a,
                              const energy::EnergyAccountant& b) {
  const auto sa = a.capture_state();
  const auto sb = b.capture_state();
  EXPECT_EQ(sa.training_mwh, sb.training_mwh);
  EXPECT_EQ(sa.comm_mwh, sb.comm_mwh);
  EXPECT_EQ(sa.training_rounds, sb.training_rounds);
  EXPECT_EQ(sa.budget, sb.budget);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- round-trip fuzz across fleet shapes, codecs, schedulers ---------------

struct EngineVariant {
  const char* label;
  quant::Codec codec;
  std::size_t sparse_k;
};

const EngineVariant kVariants[] = {
    {"dense-identity", quant::Codec::kIdentity, 0},
    {"dense-fp16", quant::Codec::kFp16, 0},
    {"dense-int8d", quant::Codec::kInt8Dithered, 0},
    {"sparse-int8", quant::Codec::kInt8, 7},
    {"sparse-identity", quant::Codec::kIdentity, 5},
};

TEST(FleetImage, RoundTripIsBitIdenticalAcrossCodecsAndSchedulers) {
  const std::string path = temp_path("fleet_roundtrip.sktf");
  const struct {
    std::size_t nodes, degree;
  } shapes[] = {{4, 2}, {6, 3}, {9, 2}};

  for (const auto& shape : shapes) {
    Fixture fixture(shape.nodes, shape.degree);
    std::vector<std::unique_ptr<core::RoundScheduler>> schedulers;
    schedulers.push_back(std::make_unique<core::DpsgdScheduler>());
    schedulers.push_back(std::make_unique<core::SkipTrainScheduler>(2, 1));
    schedulers.push_back(
        std::make_unique<core::SkipTrainConstrainedScheduler>(
            1, 1, 20, std::vector<std::size_t>(shape.nodes, 5), 7));
    schedulers.push_back(std::make_unique<core::GreedyScheduler>());

    for (const auto& scheduler : schedulers) {
      for (const EngineVariant& variant : kVariants) {
        SCOPED_TRACE(std::string(variant.label) + " n=" +
                     std::to_string(shape.nodes) + " " + scheduler->name());
        sim::EngineConfig config;
        config.exchange_codec = variant.codec;
        config.sparse_exchange_k = variant.sparse_k;

        sim::RoundEngine original = fixture.make_engine(*scheduler, config);
        original.run_rounds(4);
        ckpt::save_fleet_image(original, path);

        sim::RoundEngine restored = fixture.make_engine(*scheduler, config);
        ckpt::restore_fleet_image(restored, path);

        EXPECT_EQ(restored.rounds_executed(), 4u);
        EXPECT_TRUE(bytes_equal(original.node_parameters(),
                                restored.node_parameters()));
        expect_accountants_equal(original.accountant(),
                                 restored.accountant());
        // RNG + optimizer state restored bit-exactly: the continuations
        // must stay bitwise identical through more stochastic rounds.
        original.run_rounds(3);
        restored.run_rounds(3);
        EXPECT_TRUE(bytes_equal(original.node_parameters(),
                                restored.node_parameters()));
        expect_accountants_equal(original.accountant(),
                                 restored.accountant());
      }
    }
  }
}

// --- kill-at-every-round resume equivalence --------------------------------

class KillAtEveryRound : public ::testing::TestWithParam<EngineVariant> {};

TEST_P(KillAtEveryRound, ResumedRunMatchesUninterruptedBitwise) {
  const EngineVariant variant = GetParam();
  const std::string path = temp_path("fleet_kill.sktf");
  constexpr std::size_t kTotal = 8;
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::EngineConfig config;
  config.exchange_codec = variant.codec;
  config.sparse_exchange_k = variant.sparse_k;

  sim::RoundEngine reference = fixture.make_engine(scheduler, config);
  reference.run_rounds(kTotal);

  for (std::size_t k = 1; k < kTotal; ++k) {
    SCOPED_TRACE("killed at round " + std::to_string(k));
    // The "crashing" run gets as far as round k and checkpoints.
    sim::RoundEngine victim = fixture.make_engine(scheduler, config);
    victim.run_rounds(k);
    ckpt::save_fleet_image(victim, path);
    // A fresh process restores the image and finishes the run.
    sim::RoundEngine resumed = fixture.make_engine(scheduler, config);
    ckpt::restore_fleet_image(resumed, path);
    resumed.run_rounds(kTotal - k);
    EXPECT_TRUE(bytes_equal(reference.node_parameters(),
                            resumed.node_parameters()));
    expect_accountants_equal(reference.accountant(), resumed.accountant());
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, KillAtEveryRound,
                         ::testing::ValuesIn(kVariants));

TEST(FleetImage, RestoreOverwritesAnEngineThatAlreadyRan) {
  // Re-entering a half-done trial restores into an engine that may have
  // executed rounds of its own; the image must win completely.
  const std::string path = temp_path("fleet_overwrite.sktf");
  Fixture fixture(6, 2);
  const core::DpsgdScheduler scheduler;
  sim::RoundEngine reference = fixture.make_engine(scheduler);
  reference.run_rounds(5);

  sim::RoundEngine source = fixture.make_engine(scheduler);
  source.run_rounds(3);
  ckpt::save_fleet_image(source, path);

  sim::RoundEngine target = fixture.make_engine(scheduler);
  target.run_rounds(2);  // diverged state that must be discarded
  ckpt::restore_fleet_image(target, path);
  EXPECT_EQ(target.rounds_executed(), 3u);
  target.run_rounds(2);
  EXPECT_TRUE(
      bytes_equal(reference.node_parameters(), target.node_parameters()));
  expect_accountants_equal(reference.accountant(), target.accountant());
}

// --- async engine ----------------------------------------------------------

TEST(FleetImage, AsyncResumeMatchesUninterruptedBitwise) {
  const std::string path = temp_path("fleet_async.sktf");
  Fixture fixture(6, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  for (const quant::Codec codec :
       {quant::Codec::kIdentity, quant::Codec::kInt8Dithered}) {
    SCOPED_TRACE(quant::codec_token(codec));
    sim::AsyncConfig config;
    config.exchange_codec = codec;

    sim::AsyncGossipEngine reference = fixture.make_async(scheduler, config);
    reference.run_until(20.0);

    for (const double cut : {0.4, 3.7, 11.0, 19.5}) {
      SCOPED_TRACE("killed at t=" + std::to_string(cut));
      sim::AsyncGossipEngine victim = fixture.make_async(scheduler, config);
      victim.run_until(cut);
      ckpt::save_fleet_image(victim, path);

      sim::AsyncGossipEngine resumed = fixture.make_async(scheduler, config);
      ckpt::restore_fleet_image(resumed, path);
      EXPECT_EQ(resumed.total_activations(), victim.total_activations());
      resumed.run_until(20.0);

      EXPECT_EQ(resumed.total_activations(), reference.total_activations());
      EXPECT_EQ(resumed.total_trainings(), reference.total_trainings());
      EXPECT_DOUBLE_EQ(resumed.now(), reference.now());
      EXPECT_TRUE(bytes_equal(reference.node_parameters(),
                              resumed.node_parameters()));
      expect_accountants_equal(reference.accountant(),
                               resumed.accountant());
    }
  }
}

// --- probe + rejection matrix ----------------------------------------------

TEST(FleetImage, ProbeReportsSummaryWithoutRestoring) {
  const std::string path = temp_path("fleet_probe.sktf");
  Fixture fixture(5, 2);
  const core::DpsgdScheduler scheduler;
  sim::RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(3);
  ckpt::save_fleet_image(engine, path);

  const ckpt::FleetImageInfo info = ckpt::probe_fleet_image(path);
  EXPECT_EQ(info.engine, ckpt::EngineKind::kRoundEngine);
  EXPECT_EQ(info.nodes, 5u);
  EXPECT_EQ(info.dim, fixture.prototype.num_parameters());
  EXPECT_EQ(info.round, 3u);
  EXPECT_FALSE(info.has_experiment);
}

TEST(FleetImage, RejectionMatrix) {
  const std::string path = temp_path("fleet_valid.sktf");
  const std::string bad = temp_path("fleet_bad.sktf");
  Fixture fixture(5, 2);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(2);
  ckpt::save_fleet_image(engine, path);
  const std::string valid = read_file(path);
  ASSERT_FALSE(valid.empty());

  const auto expect_rejected = [&](const std::string& bytes,
                                   const char* label) {
    SCOPED_TRACE(label);
    write_file(bad, bytes);
    sim::RoundEngine target = fixture.make_engine(scheduler);
    EXPECT_THROW(ckpt::restore_fleet_image(target, bad),
                 std::runtime_error);
  };

  // Truncations at every structural boundary (and a dense sample of
  // mid-payload cuts).
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{9},
        std::size_t{10}, std::size_t{40}, valid.size() / 2,
        valid.size() - 1}) {
    expect_rejected(valid.substr(0, cut),
                    ("truncated to " + std::to_string(cut)).c_str());
  }
  // Trailing garbage after a complete payload.
  expect_rejected(valid + "x", "one trailing byte");
  expect_rejected(valid + std::string(64, '\0'), "trailing zeros");
  // Corrupted magic / version / engine kind.
  {
    std::string bytes = valid;
    bytes[0] = 'X';
    expect_rejected(bytes, "bad magic");
  }
  {
    std::string bytes = valid;
    bytes[4] = static_cast<char>(0x7f);  // version LSB
    expect_rejected(bytes, "unsupported version");
  }
  {
    std::string bytes = valid;
    bytes[8] = 9;  // engine kind byte
    expect_rejected(bytes, "unknown engine kind");
  }
  // Hostile length prefix: blow up the node count field (first u64 of the
  // engine payload) — must throw, not allocate.
  {
    std::string bytes = valid;
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[10 + i] = static_cast<char>(0xff);
    }
    expect_rejected(bytes, "hostile node count");
  }

  // Mismatched construction: wrong engine kind, scheduler, seed, shape.
  {
    sim::AsyncGossipEngine async_target = fixture.make_async(scheduler);
    EXPECT_THROW(ckpt::restore_fleet_image(async_target, path),
                 std::runtime_error);
  }
  {
    const core::SkipTrainScheduler other(1, 2);
    sim::RoundEngine target = fixture.make_engine(other);
    EXPECT_THROW(ckpt::restore_fleet_image(target, path),
                 std::runtime_error);
  }
  {
    sim::EngineConfig config;
    config.seed = 43;
    sim::RoundEngine target = fixture.make_engine(scheduler, config);
    EXPECT_THROW(ckpt::restore_fleet_image(target, path),
                 std::runtime_error);
  }
  // EVERY outcome-affecting config knob is part of the image identity —
  // a restore into an engine with a different learning rate, local-step
  // count, or batch size must be refused, not silently diverge.
  {
    sim::EngineConfig config;
    config.learning_rate = 0.05f;
    sim::RoundEngine target = fixture.make_engine(scheduler, config);
    EXPECT_THROW(ckpt::restore_fleet_image(target, path),
                 std::runtime_error);
  }
  {
    sim::EngineConfig config;
    config.local_steps = 3;  // fixture default is 1
    sim::RoundEngine target(fixture.prototype, fixture.data, fixture.mixing,
                            scheduler, fixture.make_accountant(), config);
    EXPECT_THROW(ckpt::restore_fleet_image(target, path),
                 std::runtime_error);
  }
  {
    Fixture small(4, 2);
    sim::RoundEngine target = small.make_engine(scheduler);
    EXPECT_THROW(ckpt::restore_fleet_image(target, path),
                 std::runtime_error);
  }
  // Missing file.
  {
    sim::RoundEngine target = fixture.make_engine(scheduler);
    EXPECT_THROW(
        ckpt::restore_fleet_image(target, temp_path("no_such.sktf")),
        std::runtime_error);
  }
}

TEST(FleetImage, AtomicWriteKeepsPreviousImageOnFailure) {
  const std::string path = temp_path("fleet_atomic.sktf");
  Fixture fixture(4, 2);
  const core::DpsgdScheduler scheduler;
  sim::RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(1);
  ckpt::save_fleet_image(engine, path);
  const std::string first = read_file(path);

  // A crash mid-write leaves only the .tmp file behind; the image itself
  // must still hold the previous bytes.
  write_file(path + ".tmp", "partial garbage");
  EXPECT_EQ(read_file(path), first);
  sim::RoundEngine target = fixture.make_engine(scheduler);
  ckpt::restore_fleet_image(target, path);  // still valid
  EXPECT_EQ(target.rounds_executed(), 1u);
}

// --- experiment images through run_experiment ------------------------------

sweep::SweepGrid tiny_grid() {
  sweep::SweepGrid grid;
  grid.name = "ckpt";
  grid.data.nodes = 8;
  grid.data.samples_per_node = 6;
  grid.data.test_pool = 40;
  grid.base.total_rounds = 6;
  grid.base.local_steps = 1;
  grid.base.batch_size = 4;
  grid.base.eval_every = 2;
  grid.base.eval_max_samples = 20;
  grid.base.degree = 2;
  return grid;
}

TEST(ExperimentImage, ResumedRunEmitsByteIdenticalMetricsCsv) {
  const std::string image = temp_path("experiment.sktf");
  std::filesystem::remove(image);
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);

  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.gamma_train = 1;
  options.gamma_sync = 1;
  options.checkpoint_path = image;
  options.checkpoint_every = 2;

  // Uninterrupted run; leaves the round-4 image behind (rounds = 6).
  const sim::ExperimentResult full =
      sim::run_experiment(workload->data, workload->prototype, options);
  ASSERT_TRUE(std::filesystem::exists(image));
  const ckpt::FleetImageInfo info = ckpt::probe_fleet_image(image);
  EXPECT_EQ(info.round, 4u);
  EXPECT_TRUE(info.has_experiment);

  // "Crash after round 4": resume re-enters at round 5 and must
  // reproduce the metrics series byte-for-byte.
  options.resume = true;
  const sim::ExperimentResult resumed =
      sim::run_experiment(workload->data, workload->prototype, options);

  const std::string full_csv = temp_path("experiment_full.csv");
  const std::string resumed_csv = temp_path("experiment_resumed.csv");
  full.recorder.write_csv(full_csv);
  resumed.recorder.write_csv(resumed_csv);
  const std::string bytes = read_file(full_csv);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(resumed_csv));
  EXPECT_EQ(full.final_mean_accuracy, resumed.final_mean_accuracy);
  EXPECT_EQ(full.coordinated_training_rounds,
            resumed.coordinated_training_rounds);
  EXPECT_EQ(full.final_per_node_accuracy, resumed.final_per_node_accuracy);
}

TEST(ExperimentImage, StaleImagesAreIgnoredNotResumed) {
  // An in-flight image written under a DIFFERENT configuration (edited
  // grid) or a longer horizon must never contribute resumed state: the
  // run starts fresh and matches a clean run bit-for-bit.
  const std::string image = temp_path("experiment_stale.sktf");
  std::filesystem::remove(image);
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);

  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.gamma_train = 1;
  options.gamma_sync = 1;
  options.checkpoint_path = image;
  options.checkpoint_every = 2;
  options.checkpoint_fingerprint = "config-A";
  (void)sim::run_experiment(workload->data, workload->prototype, options);
  ASSERT_TRUE(std::filesystem::exists(image));  // image at round 4

  // Same path, edited configuration: lr changed, new fingerprint.
  sim::RunOptions edited = options;
  edited.learning_rate = 0.05f;
  edited.checkpoint_fingerprint = "config-B";
  edited.resume = true;
  const sim::ExperimentResult resumed =
      sim::run_experiment(workload->data, workload->prototype, edited);
  sim::RunOptions clean = edited;
  clean.resume = false;
  clean.checkpoint_path.clear();
  const sim::ExperimentResult fresh =
      sim::run_experiment(workload->data, workload->prototype, clean);
  EXPECT_EQ(resumed.final_mean_accuracy, fresh.final_mean_accuracy);
  EXPECT_EQ(resumed.recorder.records().size(),
            fresh.recorder.records().size());

  // Shrunk horizon: image round (4) past total_rounds (3) → fresh run,
  // not an error row.
  sim::RunOptions shorter = options;
  shorter.total_rounds = 3;
  shorter.eval_every = 3;
  shorter.resume = true;
  shorter.checkpoint_path = image;
  const sim::ExperimentResult short_resumed =
      sim::run_experiment(workload->data, workload->prototype, shorter);
  shorter.resume = false;
  shorter.checkpoint_path.clear();
  const sim::ExperimentResult short_fresh =
      sim::run_experiment(workload->data, workload->prototype, shorter);
  EXPECT_EQ(short_resumed.final_mean_accuracy,
            short_fresh.final_mean_accuracy);

  // Corrupt image: the resume must fall back to a fresh run (engine
  // rebuilt, no half-restored state), not throw — one bad file must
  // never permanently poison a trial slot with a failure row.
  write_file(image, "garbage, not a fleet image at all");
  sim::RunOptions corrupt = options;
  corrupt.resume = true;
  const sim::ExperimentResult corrupt_resumed =
      sim::run_experiment(workload->data, workload->prototype, corrupt);
  sim::RunOptions corrupt_fresh = options;
  corrupt_fresh.checkpoint_path.clear();
  const sim::ExperimentResult baseline =
      sim::run_experiment(workload->data, workload->prototype,
                          corrupt_fresh);
  EXPECT_EQ(corrupt_resumed.final_mean_accuracy,
            baseline.final_mean_accuracy);
  EXPECT_EQ(corrupt_resumed.recorder.records().size(),
            baseline.recorder.records().size());
}

// --- sweep-level resume ----------------------------------------------------

TEST(SweepResume, SkipsCompletedTrialsAndKeepsCsvBytes) {
  const std::string dir = temp_path("sweep_ckpt_dir");
  std::filesystem::remove_all(dir);
  sweep::SweepGrid grid = tiny_grid();
  grid.gamma_trains = {1, 2};
  grid.seeds = {1, 2};
  grid.algorithms = {sim::Algorithm::kSkipTrain, sim::Algorithm::kDpsgd};

  // Reference: no checkpointing at all.
  sweep::SweepOptions plain;
  plain.threads = 1;
  const sweep::SweepReport reference = sweep::SweepRunner(plain).run(grid);
  ASSERT_TRUE(reference.all_ok());
  const std::string reference_csv = temp_path("sweep_reference.csv");
  reference.write_csv(reference_csv);
  const std::string reference_bytes = read_file(reference_csv);
  ASSERT_FALSE(reference_bytes.empty());

  // Checkpointed run: same CSV bytes, result files + manifest on disk.
  sweep::SweepOptions checkpointed;
  checkpointed.threads = 2;
  checkpointed.checkpoint_dir = dir;
  checkpointed.checkpoint_every = 2;
  const sweep::SweepReport first =
      sweep::SweepRunner(checkpointed).run(grid);
  ASSERT_TRUE(first.all_ok());
  EXPECT_EQ(first.resumed_trials, 0u);
  const std::string first_csv = temp_path("sweep_first.csv");
  first.write_csv(first_csv);
  EXPECT_EQ(reference_bytes, read_file(first_csv));
  EXPECT_TRUE(std::filesystem::exists(dir + "/manifest.txt"));
  EXPECT_TRUE(
      std::filesystem::exists(ckpt::trial_file_base(dir, 0) + ".result"));

  // Resume with everything complete: all 8 trials load from the store.
  checkpointed.resume = true;
  const sweep::SweepReport resumed =
      sweep::SweepRunner(checkpointed).run(grid);
  ASSERT_TRUE(resumed.all_ok());
  EXPECT_EQ(resumed.resumed_trials, grid.trial_count());
  const std::string resumed_csv = temp_path("sweep_resumed.csv");
  resumed.write_csv(resumed_csv);
  EXPECT_EQ(reference_bytes, read_file(resumed_csv));

  // Simulate a crash that lost one trial's result: only that trial
  // reruns, and the summary still matches byte-for-byte.
  std::filesystem::remove(ckpt::trial_file_base(dir, 3) + ".result");
  const sweep::SweepReport partial =
      sweep::SweepRunner(checkpointed).run(grid);
  ASSERT_TRUE(partial.all_ok());
  EXPECT_EQ(partial.resumed_trials, grid.trial_count() - 1);
  const std::string partial_csv = temp_path("sweep_partial.csv");
  partial.write_csv(partial_csv);
  EXPECT_EQ(reference_bytes, read_file(partial_csv));

  // A persisted FAILURE is retried, not reused: plant a failed result for
  // trial 2 (as a transient error would leave behind) — the resume reruns
  // it, succeeds, and the summary heals to the reference bytes.
  {
    sweep::TrialResult poisoned;
    poisoned.spec = grid.expand()[2];
    poisoned.status = sweep::TrialStatus::kFailed;
    poisoned.error = "transient: out of memory";
    ckpt::write_trial_result(poisoned,
                             ckpt::trial_file_base(dir, 2) + ".result");
  }
  const sweep::SweepReport healed =
      sweep::SweepRunner(checkpointed).run(grid);
  ASSERT_TRUE(healed.all_ok());
  EXPECT_EQ(healed.resumed_trials, grid.trial_count() - 1);
  const std::string healed_csv = temp_path("sweep_healed.csv");
  healed.write_csv(healed_csv);
  EXPECT_EQ(reference_bytes, read_file(healed_csv));
}

TEST(SweepResume, QuarantinesCorruptResultsAndRecomputes) {
  // Regression: a bit-flipped or truncated trial-store entry used to be
  // indistinguishable from "missing" at best and fatal at worst. The
  // runner must classify it kCorrupt, rename it aside as evidence, and
  // recompute the trial — healing the summary to the reference bytes.
  const std::string dir = temp_path("sweep_quarantine_dir");
  std::filesystem::remove_all(dir);
  sweep::SweepGrid grid = tiny_grid();
  grid.gamma_trains = {1, 2};
  grid.seeds = {1, 2};

  sweep::SweepOptions options;
  options.threads = 1;
  options.checkpoint_dir = dir;
  const sweep::SweepReport first = sweep::SweepRunner(options).run(grid);
  ASSERT_TRUE(first.all_ok());
  const std::string reference_csv = temp_path("sweep_quarantine_ref.csv");
  first.write_csv(reference_csv);
  const std::string reference_bytes = read_file(reference_csv);

  // Flip a byte in the middle of trial 1's stored result (past the header,
  // inside the CRC-protected payload) and truncate trial 2's to a prefix.
  const std::string corrupt_path = ckpt::trial_file_base(dir, 1) + ".result";
  std::string bytes = read_file(corrupt_path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= static_cast<char>(0x40);
  write_file(corrupt_path, bytes);
  const std::string truncated_path =
      ckpt::trial_file_base(dir, 2) + ".result";
  const std::string whole = read_file(truncated_path);
  write_file(truncated_path, whole.substr(0, whole.size() / 3));

  options.resume = true;
  const sweep::SweepReport resumed = sweep::SweepRunner(options).run(grid);
  ASSERT_TRUE(resumed.all_ok());
  EXPECT_EQ(resumed.resumed_trials, grid.trial_count() - 2);

  // The damaged entries were moved aside, not deleted, and the recomputed
  // results took their place on disk.
  EXPECT_TRUE(std::filesystem::exists(corrupt_path + ".bad"));
  EXPECT_TRUE(std::filesystem::exists(truncated_path + ".bad"));
  EXPECT_TRUE(std::filesystem::exists(corrupt_path));
  EXPECT_TRUE(std::filesystem::exists(truncated_path));

  const std::string resumed_csv = temp_path("sweep_quarantine_resumed.csv");
  resumed.write_csv(resumed_csv);
  EXPECT_EQ(reference_bytes, read_file(resumed_csv));

  // A second resume adopts the recomputed entries normally.
  const sweep::SweepReport again = sweep::SweepRunner(options).run(grid);
  ASSERT_TRUE(again.all_ok());
  EXPECT_EQ(again.resumed_trials, grid.trial_count());
}

TEST(FleetImage, EverySingleBitFlipIsRejectedNeverFatal) {
  // The exhaustive corruption matrix over a complete (tiny) fleet image:
  // whichever bit rots on disk, probe and restore must throw a clean
  // ckpt error — never crash, hang, or over-allocate. Section CRCs cover
  // the whole file, so every flip is detectable.
  Fixture fixture(2, 1);
  const core::SkipTrainScheduler scheduler(2, 1);
  sim::RoundEngine engine = fixture.make_engine(scheduler);
  engine.run_rounds(2);
  const std::string path = temp_path("bitflip_image.sktf");
  ckpt::save_fleet_image(engine, path);
  const std::string pristine = read_file(path);
  ASSERT_FALSE(pristine.empty());

  // One shared restore target: a failed restore may leave it partially
  // overwritten, which the next iteration (and the final pristine
  // restore) must tolerate anyway — that IS the crash-recovery contract.
  sim::RoundEngine target = fixture.make_engine(scheduler);
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < pristine.size() * 8; ++bit) {
    std::string mutated = pristine;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    write_file(path, mutated);
    bool threw = false;
    try {
      (void)ckpt::probe_fleet_image(path);
      ckpt::restore_fleet_image(target, path);
    } catch (const std::exception&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "bit " << bit << " of " << pristine.size() * 8;
    if (threw) ++rejected;
  }
  EXPECT_EQ(rejected, pristine.size() * 8);

  // The pristine bytes still restore — the loop never consumed them.
  write_file(path, pristine);
  ckpt::restore_fleet_image(target, path);
  EXPECT_TRUE(
      bytes_equal(engine.node_parameters(), target.node_parameters()));
}

TEST(TrialStore, EverySingleBitFlipIsRejectedNeverFatal) {
  // Same matrix over a trial-store entry: every flip must classify as
  // kStale (fingerprint drift) or kCorrupt (checksum/structure damage) —
  // never kLoaded, never a crash.
  const std::string dir = temp_path("trial_bitflip_dir");
  std::filesystem::create_directories(dir);
  sweep::SweepGrid grid = tiny_grid();
  const sweep::TrialSpec spec = grid.expand().front();
  sweep::TrialResult result;
  result.spec = spec;
  result.result.final_mean_accuracy = 0.625;
  const std::string path = ckpt::trial_file_base(dir, 0) + ".result";
  ckpt::write_trial_result(result, path);
  const std::string pristine = read_file(path);
  ASSERT_FALSE(pristine.empty());

  for (std::size_t bit = 0; bit < pristine.size() * 8; ++bit) {
    std::string mutated = pristine;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    write_file(path, mutated);
    sweep::TrialResult loaded;
    const ckpt::TrialLoadStatus status =
        ckpt::load_trial_result_status(spec, path, loaded);
    EXPECT_TRUE(status == ckpt::TrialLoadStatus::kStale ||
                status == ckpt::TrialLoadStatus::kCorrupt)
        << "bit " << bit << " classified "
        << static_cast<int>(status);
  }

  write_file(path, pristine);
  sweep::TrialResult loaded;
  EXPECT_EQ(ckpt::load_trial_result_status(spec, path, loaded),
            ckpt::TrialLoadStatus::kLoaded);
  EXPECT_EQ(loaded.result.final_mean_accuracy, 0.625);
}

TEST(TrialStore, StaleOrMismatchedResultsForceRerun) {
  const std::string dir = temp_path("trial_store_dir");
  std::filesystem::create_directories(dir);
  sweep::SweepGrid grid = tiny_grid();
  const sweep::TrialSpec spec = grid.expand().front();

  sweep::TrialResult result;
  result.spec = spec;
  result.result.final_mean_accuracy = 0.5;
  const std::string path = ckpt::trial_file_base(dir, 0) + ".result";
  ckpt::write_trial_result(result, path);

  sweep::TrialResult loaded;
  EXPECT_TRUE(ckpt::load_trial_result(spec, path, loaded));
  EXPECT_EQ(loaded.result.final_mean_accuracy, 0.5);

  // Any configuration drift invalidates the stored result.
  sweep::TrialSpec edited = spec;
  edited.options.learning_rate = 0.05f;
  EXPECT_FALSE(ckpt::load_trial_result(edited, path, loaded));
  edited = spec;
  edited.options.exchange_codec = quant::Codec::kFp16;
  EXPECT_FALSE(ckpt::load_trial_result(edited, path, loaded));
  edited = spec;
  edited.data.seed = 99;
  EXPECT_FALSE(ckpt::load_trial_result(edited, path, loaded));

  // Corrupt files force a rerun instead of crashing the sweep.
  write_file(path, "definitely not a trial result");
  EXPECT_FALSE(ckpt::load_trial_result(spec, path, loaded));
  EXPECT_FALSE(
      ckpt::load_trial_result(spec, dir + "/missing.result", loaded));
}

}  // namespace
}  // namespace skiptrain
