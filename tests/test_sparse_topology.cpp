// Implicit/CSR sparse topology layer: spec parsing, bitwise equivalence of
// the implicit k-regular graph and SparseMixing against the dense
// materialized oracle, sharded-kernel bit-identity across shard sizes and
// thread counts, both engines (sync + async) on sparse topologies through
// checkpoint save/restore, sparse-degree energy billing, the gated CSV
// topology column, and hostile CSR-file parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/sparse.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "plane/sharded.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sweep/dataset_cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/result_sink.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// TopologySpec parsing
// ---------------------------------------------------------------------------

TEST(TopologySpec, ParsesValidTokens) {
  EXPECT_EQ(graph::TopologySpec::parse("").kind,
            graph::TopologySpec::Kind::kDense);
  EXPECT_EQ(graph::TopologySpec::parse("dense").kind,
            graph::TopologySpec::Kind::kDense);
  const auto kreg = graph::TopologySpec::parse("kregular:6");
  EXPECT_EQ(kreg.kind, graph::TopologySpec::Kind::kKRegular);
  EXPECT_EQ(kreg.k, 6u);
  EXPECT_EQ(kreg.token(), "kregular:6");
  const auto csr = graph::TopologySpec::parse("csr:/tmp/graph.csr");
  EXPECT_EQ(csr.kind, graph::TopologySpec::Kind::kCsr);
  EXPECT_EQ(csr.path, "/tmp/graph.csr");
  EXPECT_EQ(csr.token(), "csr:/tmp/graph.csr");
  EXPECT_EQ(graph::TopologySpec::parse("dense").token(), "dense");
  EXPECT_EQ(graph::topology_token(""), "dense");
  EXPECT_EQ(graph::topology_token("kregular:6"), "kregular:6");
}

TEST(TopologySpec, RejectsHostileTokens) {
  for (const char* token :
       {"kregula:6", "sparse", "kregular:", "kregular:1", "kregular:0",
        "kregular:abc", "kregular:6x", "kregular:-4", "kregular:12345678",
        "csr:", "dense:3", "KREGULAR:6"}) {
    EXPECT_THROW((void)graph::TopologySpec::parse(token),
                 std::invalid_argument)
        << "token: " << token;
  }
}

// ---------------------------------------------------------------------------
// ImplicitKRegular vs materialized adjacency
// ---------------------------------------------------------------------------

TEST(ImplicitKRegular, MatchesMaterializedAdjacency) {
  for (const std::size_t n : {std::size_t{8}, std::size_t{12},
                              std::size_t{64}}) {
    for (const std::size_t k :
         {std::size_t{2}, std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
      const graph::ImplicitKRegular implicit(n, k, 123);
      const graph::Topology topology = implicit.materialize();
      ASSERT_EQ(topology.num_nodes(), n);
      EXPECT_TRUE(topology.is_regular());
      EXPECT_TRUE(topology.is_connected());
      std::vector<std::size_t> buf(k);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(topology.degree(i), k) << "n=" << n << " k=" << k;
        implicit.neighbors_into(i, buf);
        // neighbors_into emits ascending order — exactly Topology's
        // sorted adjacency.
        ASSERT_EQ(buf, topology.neighbors(i)) << "n=" << n << " k=" << k
                                              << " node=" << i;
      }
    }
  }
}

TEST(ImplicitKRegular, IsDeterministicInSeedAndRejectsBadCombos) {
  const graph::ImplicitKRegular a(64, 6, 99);
  const graph::ImplicitKRegular b(64, 6, 99);
  ASSERT_EQ(a.offsets().size(), b.offsets().size());
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin()));
  EXPECT_EQ(a.config_hash(), b.config_hash());
  // Any of (n, k, seed) changing must change the checkpoint identity.
  EXPECT_NE(a.config_hash(), graph::ImplicitKRegular(64, 6, 100).config_hash());
  EXPECT_NE(a.config_hash(), graph::ImplicitKRegular(64, 4, 99).config_hash());
  EXPECT_NE(a.config_hash(), graph::ImplicitKRegular(62, 6, 99).config_hash());

  EXPECT_THROW(graph::ImplicitKRegular(2, 2, 0), std::invalid_argument);
  EXPECT_THROW(graph::ImplicitKRegular(8, 1, 0), std::invalid_argument);
  EXPECT_THROW(graph::ImplicitKRegular(8, 8, 0), std::invalid_argument);
  EXPECT_THROW(graph::ImplicitKRegular(8, 9, 0), std::invalid_argument);
  // Odd degree needs the antipodal offset, which needs even n.
  EXPECT_THROW(graph::ImplicitKRegular(9, 3, 0), std::invalid_argument);

  std::vector<std::size_t> wrong(5);
  EXPECT_THROW(a.neighbors_into(0, wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SparseMixing vs the dense Metropolis–Hastings oracle
// ---------------------------------------------------------------------------

void expect_mixing_bitwise_equal(const graph::SparseMixing& sparse,
                                 const graph::MixingMatrix& dense) {
  ASSERT_EQ(sparse.num_nodes(), dense.num_nodes());
  for (std::size_t i = 0; i < sparse.num_nodes(); ++i) {
    ASSERT_EQ(sparse.self_weight(i), dense.self_weight(i)) << "node " << i;
    const auto sw = sparse.neighbor_weights(i);
    const auto dw = dense.neighbor_weights(i);
    ASSERT_EQ(sw.size(), dw.size()) << "node " << i;
    for (std::size_t e = 0; e < sw.size(); ++e) {
      ASSERT_EQ(sw[e].neighbor, dw[e].neighbor) << "node " << i;
      ASSERT_EQ(sw[e].weight, dw[e].weight) << "node " << i;
    }
  }
}

TEST(SparseMixing, ImplicitMatchesDenseOracleBitwise) {
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}}) {
    for (const std::size_t k :
         {std::size_t{2}, std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
      const graph::ImplicitKRegular implicit(n, k, 31);
      expect_mixing_bitwise_equal(
          graph::SparseMixing::metropolis_hastings(implicit),
          graph::MixingMatrix::metropolis_hastings(implicit.materialize()));
    }
  }
}

TEST(SparseMixing, CsrFromTopologyMatchesDenseOracleBitwise) {
  util::Rng topo_rng(11);
  const auto topology = graph::make_random_regular(16, 4, topo_rng);
  const auto csr = graph::CsrGraph::from_topology(topology);
  EXPECT_EQ(csr.num_nodes(), 16u);
  EXPECT_EQ(csr.num_entries(), 16u * 4u);
  EXPECT_TRUE(csr.is_connected());
  // Materialize round-trips the exact adjacency.
  EXPECT_EQ(graph::CsrGraph::from_topology(csr.materialize()).content_hash(),
            csr.content_hash());
  expect_mixing_bitwise_equal(
      graph::SparseMixing::metropolis_hastings(csr),
      graph::MixingMatrix::metropolis_hastings(topology));
}

// ---------------------------------------------------------------------------
// Sharded gossip kernels vs the blocked kernel
// ---------------------------------------------------------------------------

TEST(ShardedKernel, BitIdenticalToBlockedAcrossShardSizesAndThreads) {
  const std::size_t n = 24;
  const std::size_t dim = 1000;
  const graph::ImplicitKRegular implicit(n, 6, 5);
  const auto sparse = graph::SparseMixing::metropolis_hastings(implicit);
  const auto dense =
      graph::MixingMatrix::metropolis_hastings(implicit.materialize());

  std::vector<float> half(n * dim);
  util::Rng rng(17);
  rng.fill_normal(half, 0.0f, 1.0f);
  std::vector<float> reference(n * dim, -3.0f);
  graph::apply_mixing_blocked(dense, half, reference, dim, 0);

  const graph::MixingRef sparse_ref(sparse);
  for (const std::size_t shard_rows :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    std::vector<float> out(n * dim, -7.0f);
    graph::apply_mixing_sharded(sparse_ref, half, out, dim, shard_rows);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], reference[i]) << "shard_rows=" << shard_rows
                                      << " idx=" << i;
    }
  }
  {
    util::ThreadPool::ScopedForceSerial serial;
    std::vector<float> out(n * dim, -7.0f);
    graph::apply_mixing_sharded(sparse_ref, half, out, dim, 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], reference[i]) << "serial idx=" << i;
    }
  }
}

TEST(ShardedPlaneKernel, MatchesFlatShardedKernelBitwise) {
  const std::size_t n = 30;
  const std::size_t dim = 257;
  const std::size_t shard_rows = 7;  // uneven: last shard holds 2 rows
  const graph::ImplicitKRegular implicit(n, 4, 9);
  const auto sparse = graph::SparseMixing::metropolis_hastings(implicit);

  plane::ShardedPlane fleet_plane(n, dim, shard_rows);
  EXPECT_EQ(fleet_plane.num_shards(), 5u);
  EXPECT_EQ(fleet_plane.rows_in_shard(4), 2u);
  EXPECT_EQ(fleet_plane.shard_of(13), 1u);
  EXPECT_EQ(fleet_plane.shard_begin(2), 14u);
  EXPECT_EQ(fleet_plane.shard_scratch(0).size(), dim);

  std::vector<float> half(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = fleet_plane.current_row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      const float v = 1e-3f * static_cast<float>((i * 131 + j * 7) % 997);
      row[j] = v;
      half[i * dim + j] = v;
    }
  }
  std::vector<float> reference(n * dim, -1.0f);
  graph::apply_mixing_sharded(graph::MixingRef(sparse), half, reference, dim,
                              0);
  plane::apply_mixing_sharded(sparse, fleet_plane);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = fleet_plane.current_row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      ASSERT_EQ(row[j], reference[i * dim + j]) << "node " << i << " coord "
                                                << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Engines on sparse topologies
// ---------------------------------------------------------------------------

struct SparseEngineFixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::ImplicitKRegular implicit;
  graph::SparseMixing sparse;
  graph::Topology materialized;
  graph::MixingMatrix dense;
  energy::Fleet fleet;

  explicit SparseEngineFixture(std::size_t nodes = 12, std::size_t k = 4,
                               std::uint64_t seed = 42)
      : implicit(nodes, k, seed + 7),
        fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 24;
    config.test_pool = 60;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);
    prototype = nn::make_mlp(config.feature_dim, {12}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);
    sparse = graph::SparseMixing::metropolis_hastings(implicit);
    materialized = implicit.materialize();
    dense = graph::MixingMatrix::metropolis_hastings(materialized);
  }

  energy::EnergyAccountant make_accountant() const {
    std::vector<std::size_t> degrees(fleet.num_nodes(), implicit.degree());
    return energy::EnergyAccountant(fleet, energy::CommModel{}, 89834,
                                    std::move(degrees));
  }

  sim::RoundEngine make_engine(graph::MixingRef mixing,
                               const core::RoundScheduler& scheduler,
                               std::uint64_t topology_hash) const {
    sim::EngineConfig config;
    config.local_steps = 2;
    config.batch_size = 8;
    config.topology_hash = topology_hash;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            make_accountant(), config);
  }

  void scatter_models(sim::RoundEngine& engine, std::uint64_t seed) const {
    util::Rng rng(seed);
    std::vector<float> params(prototype.num_parameters());
    for (std::size_t i = 0; i < engine.num_nodes(); ++i) {
      rng.fill_normal(params, 0.0f, 1.0f);
      engine.model(i).set_parameters(params);
    }
  }
};

TEST(SparseEngine, RoundsBitIdenticalToDenseMixingOnSameGraph) {
  SparseEngineFixture fixture;
  const core::SkipTrainScheduler scheduler(2, 2);

  sim::RoundEngine sparse_engine = fixture.make_engine(
      fixture.sparse, scheduler, fixture.implicit.config_hash());
  sim::RoundEngine dense_engine = fixture.make_engine(fixture.dense,
                                                      scheduler, 0);
  fixture.scatter_models(sparse_engine, 99);
  fixture.scatter_models(dense_engine, 99);
  sparse_engine.run_rounds(5);
  dense_engine.run_rounds(5);

  for (std::size_t i = 0; i < sparse_engine.num_nodes(); ++i) {
    const auto a = sparse_engine.node_parameters()[i];
    const auto b = dense_engine.node_parameters()[i];
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << i;
  }
  // Same graph, same weights: billed energy must agree exactly too.
  EXPECT_EQ(sparse_engine.accountant().total_comm_wh(),
            dense_engine.accountant().total_comm_wh());
}

TEST(SparseEngine, RoundsBitIdenticalAcrossThreadCounts) {
  SparseEngineFixture fixture(8, 4);
  const core::SkipTrainScheduler scheduler(2, 2);

  sim::RoundEngine parallel_engine = fixture.make_engine(
      fixture.sparse, scheduler, fixture.implicit.config_hash());
  fixture.scatter_models(parallel_engine, 7);
  parallel_engine.run_rounds(5);

  sim::RoundEngine serial_engine = fixture.make_engine(
      fixture.sparse, scheduler, fixture.implicit.config_hash());
  fixture.scatter_models(serial_engine, 7);
  {
    util::ThreadPool::ScopedForceSerial serial;
    serial_engine.run_rounds(5);
  }
  for (std::size_t i = 0; i < parallel_engine.num_nodes(); ++i) {
    const auto a = parallel_engine.node_parameters()[i];
    const auto b = serial_engine.node_parameters()[i];
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << i;
  }
}

TEST(SparseEngine, SaveRestoreContinuesBitIdentically) {
  SparseEngineFixture fixture;
  const core::SkipTrainScheduler scheduler(2, 2);
  const std::uint64_t hash = fixture.implicit.config_hash();

  sim::RoundEngine original = fixture.make_engine(fixture.sparse, scheduler,
                                                  hash);
  fixture.scatter_models(original, 55);
  original.run_rounds(3);

  std::stringstream buffer;
  {
    ckpt::ImageWriter writer(buffer);
    original.save_state(writer);
  }
  const std::string bytes = buffer.str();

  sim::RoundEngine restored = fixture.make_engine(fixture.sparse, scheduler,
                                                  hash);
  {
    std::istringstream in(bytes);
    ckpt::ImageReader reader(in, bytes.size());
    restored.restore_state(reader);
  }
  original.run_rounds(2);
  restored.run_rounds(2);
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const auto a = original.node_parameters()[i];
    const auto b = restored.node_parameters()[i];
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << i;
  }

  // A different topology identity must refuse the image outright.
  sim::RoundEngine wrong_topology =
      fixture.make_engine(fixture.sparse, scheduler, hash + 1);
  std::istringstream in(bytes);
  ckpt::ImageReader reader(in, bytes.size());
  EXPECT_THROW(wrong_topology.restore_state(reader), std::runtime_error);
}

TEST(AsyncSparseEngine, MaterializedImplicitSaveRestoreBitIdentical) {
  SparseEngineFixture fixture;
  const core::DpsgdScheduler scheduler;
  sim::AsyncConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.topology_hash = fixture.implicit.config_hash();
  const std::vector<double> speeds(fixture.fleet.num_nodes(), 1.0);
  const auto make_async = [&](const sim::AsyncConfig& c) {
    return sim::AsyncGossipEngine(fixture.prototype, fixture.data,
                                  fixture.materialized, scheduler,
                                  fixture.make_accountant(), speeds, c);
  };

  sim::AsyncGossipEngine straight = make_async(config);
  straight.run_until(4.0);

  std::stringstream buffer;
  {
    ckpt::ImageWriter writer(buffer);
    straight.save_state(writer);
  }
  const std::string bytes = buffer.str();

  sim::AsyncGossipEngine restored = make_async(config);
  {
    std::istringstream in(bytes);
    ckpt::ImageReader reader(in, bytes.size());
    restored.restore_state(reader);
  }
  straight.run_until(8.0);
  restored.run_until(8.0);
  EXPECT_EQ(straight.total_activations(), restored.total_activations());
  for (std::size_t i = 0; i < straight.num_nodes(); ++i) {
    const auto a = straight.node_parameters()[i];
    const auto b = restored.node_parameters()[i];
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << i;
  }

  sim::AsyncConfig wrong = config;
  wrong.topology_hash = config.topology_hash + 1;
  sim::AsyncGossipEngine mismatched = make_async(wrong);
  std::istringstream in(bytes);
  ckpt::ImageReader reader(in, bytes.size());
  EXPECT_THROW(mismatched.restore_state(reader), std::runtime_error);
}

// ---------------------------------------------------------------------------
// run_experiment over the topology axis
// ---------------------------------------------------------------------------

sweep::SweepGrid tiny_grid() {
  sweep::SweepGrid grid;
  grid.name = "sparse";
  grid.data.nodes = 8;
  grid.data.samples_per_node = 6;
  grid.data.test_pool = 40;
  grid.base.total_rounds = 6;
  grid.base.local_steps = 1;
  grid.base.batch_size = 4;
  grid.base.gamma_train = 1;
  grid.base.gamma_sync = 1;
  grid.base.eval_every = 3;
  grid.base.eval_max_samples = 20;
  grid.base.degree = 4;
  return grid;
}

TEST(RunExperiment, KRegularCheckpointResumeIsByteIdentical) {
  const std::string image = temp_path("sparse_experiment.sktf");
  std::filesystem::remove(image);
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);

  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.topology = "kregular:4";
  options.checkpoint_path = image;
  options.checkpoint_every = 2;

  const sim::ExperimentResult full =
      sim::run_experiment(workload->data, workload->prototype, options);
  ASSERT_TRUE(std::filesystem::exists(image));  // round-4 image left behind

  options.resume = true;
  const sim::ExperimentResult resumed =
      sim::run_experiment(workload->data, workload->prototype, options);
  const std::string full_csv = temp_path("sparse_experiment_full.csv");
  const std::string resumed_csv = temp_path("sparse_experiment_resumed.csv");
  full.recorder.write_csv(full_csv);
  resumed.recorder.write_csv(resumed_csv);
  const std::string csv_bytes = read_file(full_csv);
  EXPECT_FALSE(csv_bytes.empty());
  EXPECT_EQ(csv_bytes, read_file(resumed_csv));
  EXPECT_EQ(full.final_per_node_accuracy, resumed.final_per_node_accuracy);

  // An image from a DIFFERENT topology must not contribute state: the
  // implicit graph's config_hash is part of the engine identity, so the
  // resume falls back to a fresh run that matches a clean one exactly.
  sim::RunOptions other = options;
  other.topology = "kregular:6";
  const sim::ExperimentResult other_resumed =
      sim::run_experiment(workload->data, workload->prototype, other);
  other.resume = false;
  other.checkpoint_path.clear();
  const sim::ExperimentResult other_fresh =
      sim::run_experiment(workload->data, workload->prototype, other);
  EXPECT_EQ(other_resumed.final_per_node_accuracy,
            other_fresh.final_per_node_accuracy);
}

TEST(RunExperiment, CsrFileRunMatchesEquivalentImplicitRing) {
  // kregular:2 is exactly the ring (offset set {1} for every seed), so a
  // CSR file spelling out the same ring must reproduce the run bit-for-
  // bit — same mixing weights, same energy, same accuracies.
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);
  const std::string path = temp_path("ring8.csr");
  std::ostringstream ring;
  ring << "skiptrain-csr v1\nnodes 8\n";
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t lo = (i + 7) % 8;
    const std::size_t hi = (i + 1) % 8;
    ring << "2 " << std::min(lo, hi) << " " << std::max(lo, hi) << "\n";
  }
  write_file(path, ring.str());

  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.topology = "csr:" + path;
  const sim::ExperimentResult from_csr =
      sim::run_experiment(workload->data, workload->prototype, options);
  options.topology = "kregular:2";
  const sim::ExperimentResult from_implicit =
      sim::run_experiment(workload->data, workload->prototype, options);

  EXPECT_EQ(from_csr.final_per_node_accuracy,
            from_implicit.final_per_node_accuracy);
  EXPECT_EQ(from_csr.total_comm_wh, from_implicit.total_comm_wh);
  EXPECT_EQ(from_csr.total_training_wh, from_implicit.total_training_wh);
}

TEST(RunExperiment, SparseTopologyBillsActualNeighborCount) {
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);
  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kSkipTrain;

  const auto run = [&](const std::string& topology) {
    sim::RunOptions o = options;
    o.topology = topology;
    return sim::run_experiment(workload->data, workload->prototype, o);
  };
  // Every node has degree 4 under both the dense random-regular graph
  // and the implicit 4-regular circulant, so the billed exchange energy
  // is identical even though the graphs differ.
  const sim::ExperimentResult dense = run("dense");
  const sim::ExperimentResult kreg4 = run("kregular:4");
  EXPECT_GT(kreg4.total_comm_wh, 0.0);
  EXPECT_DOUBLE_EQ(dense.total_comm_wh, kreg4.total_comm_wh);
  // Exchange energy scales with the actual neighbor count: fewer edges,
  // cheaper gossip (energy = mwh/MB x wire MB x degree).
  const sim::ExperimentResult kreg2 = run("kregular:2");
  const sim::ExperimentResult kreg6 = run("kregular:6");
  EXPECT_LT(kreg2.total_comm_wh, kreg4.total_comm_wh);
  EXPECT_LT(kreg4.total_comm_wh, kreg6.total_comm_wh);
  EXPECT_NEAR(kreg6.total_comm_wh / kreg2.total_comm_wh, 3.0, 1e-9);
}

TEST(RunExperiment, SparseTopologyRejectsAllReduceAndNodeMismatch) {
  sweep::DatasetCache cache;
  const auto workload = cache.get(tiny_grid().data);
  sim::RunOptions options = tiny_grid().base;
  options.algorithm = sim::Algorithm::kDpsgdAllReduce;
  options.topology = "kregular:4";
  EXPECT_THROW((void)sim::run_experiment(workload->data, workload->prototype,
                                         options),
               std::invalid_argument);

  // CSR node count must match the dataset.
  const std::string path = temp_path("ring4_mismatch.csr");
  write_file(path, "skiptrain-csr v1\nnodes 4\n2 1 3\n2 0 2\n2 1 3\n2 0 2\n");
  options.algorithm = sim::Algorithm::kSkipTrain;
  options.topology = "csr:" + path;
  EXPECT_THROW((void)sim::run_experiment(workload->data, workload->prototype,
                                         options),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Summary-CSV topology column gating
// ---------------------------------------------------------------------------

TEST(SweepCsv, TopologyColumnIsGatedAndOrdered) {
  const auto& base = sweep::ResultSink::csv_header();
  EXPECT_EQ(std::find(base.begin(), base.end(), "topology"), base.end());

  const auto& with = sweep::ResultSink::csv_header(false, false, true);
  const auto it = std::find(with.begin(), with.end(), "topology");
  ASSERT_NE(it, with.end());
  EXPECT_EQ(with.size(), base.size() + 1);
  const auto column = static_cast<std::size_t>(it - with.begin());
  // The axis column lands with its siblings, right after sparse_k.
  EXPECT_EQ(with[column - 1], "sparse_k");

  sweep::TrialResult row;
  row.spec.options.topology = "kregular:6";
  const auto cells = sweep::ResultSink::csv_row(row, false, false, true);
  ASSERT_EQ(cells.size(), with.size());
  EXPECT_EQ(cells[column], "kregular:6");
  // Dense rows render the canonical token; ungated rows keep the old
  // schema byte-for-byte.
  row.spec.options.topology.clear();
  EXPECT_EQ(sweep::ResultSink::csv_row(row, false, false, true)[column],
            "dense");
  EXPECT_EQ(sweep::ResultSink::csv_row(row).size(), base.size());
}

// ---------------------------------------------------------------------------
// Hostile CSR files
// ---------------------------------------------------------------------------

graph::CsrGraph parse_csr(const std::string& text) {
  std::istringstream in(text);
  return graph::CsrGraph::parse(in, "t");
}

TEST(CsrParse, AcceptsWellFormedFile) {
  const graph::CsrGraph csr =
      parse_csr("skiptrain-csr v1\nnodes 4\n2 1 3\n2 0 2\n2 1 3\n2 0 2\n");
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_entries(), 8u);
  EXPECT_TRUE(csr.is_connected());
  ASSERT_EQ(csr.degree(2), 2u);
  EXPECT_EQ(csr.neighbors(2)[0], 1u);
  EXPECT_EQ(csr.neighbors(2)[1], 3u);
  const graph::Topology topology = csr.materialize();
  EXPECT_TRUE(topology.has_edge(0, 1));
  EXPECT_TRUE(topology.has_edge(0, 3));
  EXPECT_FALSE(topology.has_edge(0, 2));
}

TEST(CsrParse, RejectsStructuralViolations) {
  const struct {
    const char* label;
    const char* text;
  } cases[] = {
      {"bad magic", "skiptrain-csr v2\nnodes 4\n2 1 3\n2 0 2\n2 1 3\n2 0 2\n"},
      {"missing magic", "nodes 4\n2 1 3\n2 0 2\n2 1 3\n2 0 2\n"},
      {"bad nodes keyword", "skiptrain-csr v1\nn 4\n2 1 3\n"},
      {"bad nodes count", "skiptrain-csr v1\nnodes x\n"},
      {"zero nodes", "skiptrain-csr v1\nnodes 0\n"},
      {"oversized nodes", "skiptrain-csr v1\nnodes 999999999999999999\n"},
      {"bad degree token",
       "skiptrain-csr v1\nnodes 4\nq 1 3\n2 0 2\n2 1 3\n2 0 2\n"},
      {"column out of range",
       "skiptrain-csr v1\nnodes 4\n2 1 9\n2 0 2\n2 1 3\n2 0 2\n"},
      {"self loop", "skiptrain-csr v1\nnodes 4\n2 0 1\n2 0 2\n2 1 3\n2 0 2\n"},
      {"unsorted columns",
       "skiptrain-csr v1\nnodes 4\n2 3 1\n2 0 2\n2 1 3\n2 0 2\n"},
      {"duplicate columns",
       "skiptrain-csr v1\nnodes 4\n2 1 1\n2 0 2\n2 1 3\n2 0 2\n"},
      {"fewer columns than degree",
       "skiptrain-csr v1\nnodes 4\n3 1 3\n2 0 2\n2 1 3\n2 0 2\n"},
      {"trailing tokens on row",
       "skiptrain-csr v1\nnodes 4\n2 1 3 7\n2 0 2\n2 1 3\n2 0 2\n"},
      {"truncated file", "skiptrain-csr v1\nnodes 4\n2 1 3\n2 0 2\n"},
      {"trailing content",
       "skiptrain-csr v1\nnodes 4\n2 1 3\n2 0 2\n2 1 3\n2 0 2\nextra\n"},
      {"asymmetric", "skiptrain-csr v1\nnodes 3\n1 1\n1 0\n1 1\n"},
      {"disconnected", "skiptrain-csr v1\nnodes 4\n1 1\n1 0\n1 3\n1 2\n"},
  };
  for (const auto& hostile : cases) {
    EXPECT_THROW((void)parse_csr(hostile.text), std::runtime_error)
        << hostile.label;
  }
  // Errors carry file:line context for the offending row.
  try {
    (void)parse_csr("skiptrain-csr v1\nnodes 3\n1 1\n1 0\n1 1\n");
    FAIL() << "asymmetric file parsed";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("t:5"), std::string::npos)
        << err.what();
  }
  EXPECT_THROW((void)graph::CsrGraph::load_file(temp_path("no_such.csr")),
               std::runtime_error);
}

}  // namespace
}  // namespace skiptrain
