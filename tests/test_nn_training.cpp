// End-to-end single-model training: the nn substrate must actually learn.
#include <gtest/gtest.h>

#include <vector>

#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {
namespace {

/// Two Gaussian blobs in 2D, linearly separable.
void make_blobs(util::Rng& rng, std::size_t n, tensor::Tensor& features,
                std::vector<std::int32_t>& labels) {
  features = tensor::Tensor({n, 2});
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t label = static_cast<std::int32_t>(i % 2);
    const float cx = label == 0 ? -2.0f : 2.0f;
    features.at(i, 0) = cx + static_cast<float>(rng.normal()) * 0.5f;
    features.at(i, 1) = static_cast<float>(rng.normal()) * 0.5f;
    labels[i] = label;
  }
}

double train_epochs(Sequential& model, SgdOptimizer& opt,
                    const tensor::Tensor& features,
                    std::span<const std::int32_t> labels, int steps) {
  double last_loss = 0.0;
  tensor::Tensor grad_logits;
  for (int s = 0; s < steps; ++s) {
    model.zero_grad();
    const tensor::Tensor& logits = model.forward(features);
    if (grad_logits.shape() != logits.shape()) {
      grad_logits = tensor::Tensor(logits.shape());
    }
    const LossResult result =
        softmax_cross_entropy(logits, labels, grad_logits);
    model.backward(features, grad_logits);
    opt.step(model);
    last_loss = result.loss;
  }
  return last_loss;
}

TEST(Training, LearnsLinearlySeparableBlobs) {
  util::Rng rng(5);
  tensor::Tensor features;
  std::vector<std::int32_t> labels;
  make_blobs(rng, 200, features, labels);

  Sequential model = make_softmax_regression(2, 2);
  initialize(model, rng);
  SgdOptimizer opt({0.5f, 0.0f, 0.0f});

  const tensor::Tensor& logits0 = model.forward(features);
  const double initial_acc =
      softmax_cross_entropy_eval(logits0, labels).accuracy;
  train_epochs(model, opt, features, labels, 100);
  const tensor::Tensor& logits1 = model.forward(features);
  const LossResult final_result = softmax_cross_entropy_eval(logits1, labels);

  EXPECT_GT(final_result.accuracy, 0.97);
  EXPECT_GT(final_result.accuracy, initial_acc);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  util::Rng rng(6);
  tensor::Tensor features;
  std::vector<std::int32_t> labels;
  make_blobs(rng, 100, features, labels);

  Sequential model = make_mlp(2, {8}, 2);
  initialize(model, rng);
  SgdOptimizer opt({0.2f, 0.0f, 0.0f});

  std::vector<double> losses;
  tensor::Tensor grad_logits;
  for (int s = 0; s < 50; ++s) {
    model.zero_grad();
    const tensor::Tensor& logits = model.forward(features);
    if (grad_logits.shape() != logits.shape()) {
      grad_logits = tensor::Tensor(logits.shape());
    }
    losses.push_back(
        softmax_cross_entropy(logits, labels, grad_logits).loss);
    model.backward(features, grad_logits);
    opt.step(model);
  }
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

TEST(Training, MlpLearnsXorNonlinearity) {
  // XOR pattern: impossible for the linear model, learnable by the MLP.
  tensor::Tensor features({200, 2});
  std::vector<std::int32_t> labels(200);
  util::Rng rng(7);
  for (std::size_t i = 0; i < 200; ++i) {
    const int qx = static_cast<int>(rng.uniform_int(2));
    const int qy = static_cast<int>(rng.uniform_int(2));
    features.at(i, 0) = (qx ? 1.0f : -1.0f) +
                        static_cast<float>(rng.normal()) * 0.2f;
    features.at(i, 1) = (qy ? 1.0f : -1.0f) +
                        static_cast<float>(rng.normal()) * 0.2f;
    labels[i] = qx ^ qy;
  }

  Sequential model = make_mlp(2, {16}, 2);
  initialize(model, rng);
  SgdOptimizer opt({0.3f, 0.0f, 0.0f});
  train_epochs(model, opt, features, labels, 400);

  const tensor::Tensor& logits = model.forward(features);
  EXPECT_GT(softmax_cross_entropy_eval(logits, labels).accuracy, 0.95);
}

TEST(Training, MomentumAcceleratesDescent) {
  util::Rng rng(8);
  tensor::Tensor features;
  std::vector<std::int32_t> labels;
  make_blobs(rng, 100, features, labels);

  Sequential plain = make_mlp(2, {8}, 2);
  initialize(plain, rng);
  Sequential with_momentum = plain.clone();

  SgdOptimizer opt_plain({0.05f, 0.0f, 0.0f});
  SgdOptimizer opt_momentum({0.05f, 0.9f, 0.0f});
  const double loss_plain =
      train_epochs(plain, opt_plain, features, labels, 30);
  const double loss_momentum =
      train_epochs(with_momentum, opt_momentum, features, labels, 30);
  EXPECT_LT(loss_momentum, loss_plain);
}

TEST(Training, WeightDecayShrinksNorm) {
  util::Rng rng(9);
  Sequential decayed = make_mlp(4, {8}, 2);
  initialize(decayed, rng);
  Sequential free = decayed.clone();

  // With zero gradients (no data), weight decay alone shrinks parameters:
  // p *= (1 - lr*wd) = 0.9 per step, so ten steps scale the squared norm
  // by 0.9^20 ≈ 0.12.
  SgdOptimizer opt_decay({0.1f, 0.0f, 1.0f});
  SgdOptimizer opt_free({0.1f, 0.0f, 0.0f});
  for (int i = 0; i < 10; ++i) {
    decayed.zero_grad();
    free.zero_grad();
    opt_decay.step(decayed);
    opt_free.step(free);
  }
  double norm_decayed = 0.0, norm_free = 0.0;
  for (const float p : decayed.parameters_flat()) norm_decayed += p * p;
  for (const float p : free.parameters_flat()) norm_free += p * p;
  EXPECT_LT(norm_decayed, norm_free * 0.5);
}

TEST(Training, OptimizerResetStateClearsMomentum) {
  util::Rng rng(10);
  tensor::Tensor features;
  std::vector<std::int32_t> labels;
  make_blobs(rng, 50, features, labels);

  Sequential model = make_mlp(2, {4}, 2);
  initialize(model, rng);
  SgdOptimizer opt({0.1f, 0.9f, 0.0f});
  train_epochs(model, opt, features, labels, 5);
  opt.reset_state();  // must not crash and must keep training sane
  const double loss = train_epochs(model, opt, features, labels, 20);
  EXPECT_LT(loss, 1.0);
}

TEST(Loss, GradientIsSoftmaxMinusOnehotOverBatch) {
  tensor::Tensor logits({2, 3});
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 0.0f;
  logits.at(0, 2) = -1.0f;
  logits.at(1, 0) = 0.0f;
  logits.at(1, 1) = 0.0f;
  logits.at(1, 2) = 0.0f;
  const std::vector<std::int32_t> labels{0, 2};
  tensor::Tensor grad({2, 3});
  softmax_cross_entropy(logits, labels, grad);

  // Row sums of the gradient are zero (softmax sums to 1, one-hot to 1).
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += grad.at(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
  // Second row is uniform softmax (1/3 each): grad = (1/3 - onehot)/B.
  EXPECT_NEAR(grad.at(1, 0), (1.0f / 3.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(1, 2), (1.0f / 3.0f - 1.0f) / 2.0f, 1e-6f);
}

TEST(Loss, EvalMatchesTrainPath) {
  util::Rng rng(11);
  tensor::Tensor logits({4, 5});
  rng.fill_normal(logits.data(), 0.0f, 2.0f);
  std::vector<std::int32_t> labels{0, 4, 2, 1};
  tensor::Tensor grad({4, 5});
  const LossResult train = softmax_cross_entropy(logits, labels, grad);
  const LossResult eval = softmax_cross_entropy_eval(logits, labels);
  EXPECT_DOUBLE_EQ(train.loss, eval.loss);
  EXPECT_DOUBLE_EQ(train.accuracy, eval.accuracy);
}

TEST(Loss, PerfectPredictionLowLoss) {
  tensor::Tensor logits({1, 2});
  logits.at(0, 0) = 20.0f;
  logits.at(0, 1) = -20.0f;
  const std::vector<std::int32_t> labels{0};
  const LossResult result = softmax_cross_entropy_eval(logits, labels);
  EXPECT_LT(result.loss, 1e-6);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

}  // namespace
}  // namespace skiptrain::nn
