#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace skiptrain::util {
namespace {

TEST(RunningStat, MeanAndVariance) {
  RunningStat stat;
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double v : values) stat.add(v);
  EXPECT_EQ(stat.count(), values.size());
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 4.0, 1e-12);  // classic example, σ = 2
  EXPECT_NEAR(stat.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.add(3.5);
  EXPECT_EQ(stat.mean(), 3.5);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SampleVarianceUsesNMinusOne) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  EXPECT_NEAR(stat.variance(), 1.0, 1e-12);         // population
  EXPECT_NEAR(stat.sample_variance(), 2.0, 1e-12);  // Bessel-corrected
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat combined, part_a, part_b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.7) * 10.0 + i * 0.01;
    combined.add(v);
    (i < 40 ? part_a : part_b).add(v);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.count(), combined.count());
  EXPECT_NEAR(part_a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(part_a.variance(), combined.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(part_a.min(), combined.min());
  EXPECT_DOUBLE_EQ(part_a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat stat, empty;
  stat.add(1.0);
  stat.add(2.0);
  stat.merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  RunningStat other;
  other.merge(stat);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(RunningStat, NumericalStabilityLargeOffset) {
  RunningStat stat;
  // Naive sum-of-squares would lose precision at this offset.
  for (int i = 0; i < 1000; ++i) stat.add(1.0e9 + (i % 2));
  EXPECT_NEAR(stat.variance(), 0.25, 1e-6);
}

TEST(Summarize, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summarize, FloatOverload) {
  const std::vector<float> values{2.0f, 6.0f};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_NEAR(quantile(values, 0.25), 1.75, 1e-12);
}

TEST(Quantile, ClampsAndHandlesEmpty) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_EQ(quantile(one, -1.0), 7.0);
  EXPECT_EQ(quantile(one, 2.0), 7.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> values{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(values), 3.0);
}

}  // namespace
}  // namespace skiptrain::util
