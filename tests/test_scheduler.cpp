#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/equations.hpp"
#include "core/scheduler.hpp"

namespace skiptrain::core {
namespace {

TEST(Equations, ExpectedTrainingRounds) {
  // Eq. 4 examples from the paper (§4.3): Γt=Γs -> T/2; Γt=4, Γs=2 on
  // T=1000 -> ~667 (the paper quotes 666).
  EXPECT_DOUBLE_EQ(expected_training_rounds(4, 4, 1000), 500.0);
  EXPECT_NEAR(expected_training_rounds(4, 2, 1000), 666.67, 0.01);
  EXPECT_DOUBLE_EQ(expected_training_rounds(1, 4, 1000), 200.0);
  EXPECT_THROW((void)expected_training_rounds(0, 4, 100),
               std::invalid_argument);
}

TEST(Equations, TrainingProbabilityClamps) {
  EXPECT_DOUBLE_EQ(training_probability(250, 500.0), 0.5);
  EXPECT_DOUBLE_EQ(training_probability(500, 500.0), 1.0);
  EXPECT_DOUBLE_EQ(training_probability(750, 500.0), 1.0);  // min(·, 1)
  EXPECT_DOUBLE_EQ(training_probability(0, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(training_probability(10, 0.0), 1.0);  // degenerate
}

class CountRoundsParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CountRoundsParam, CountMatchesScheduleUnroll) {
  const auto [gt, gs] = GetParam();
  const SkipTrainScheduler scheduler(gt, gs);
  for (const std::size_t total : {1u, 7u, 100u, 999u, 1000u}) {
    std::size_t unrolled = 0;
    for (std::size_t t = 1; t <= total; ++t) {
      if (scheduler.round_kind(t) == RoundKind::kTraining) ++unrolled;
    }
    EXPECT_EQ(count_training_rounds(gt, gs, total), unrolled)
        << "Γt=" << gt << " Γs=" << gs << " T=" << total;
    // Eq. 4 and the exact count agree to within one cycle.
    EXPECT_NEAR(static_cast<double>(unrolled),
                expected_training_rounds(gt, gs, total),
                static_cast<double>(gt + gs));
  }
}

INSTANTIATE_TEST_SUITE_P(GammaGrid, CountRoundsParam,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(1u, 2u, 3u,
                                                              4u)));

TEST(Dpsgd, AlwaysTrains) {
  const DpsgdScheduler scheduler;
  for (std::size_t t = 1; t <= 20; ++t) {
    EXPECT_EQ(scheduler.round_kind(t), RoundKind::kTraining);
    EXPECT_TRUE(scheduler.should_train(t, 0, 0));  // ignores budget
  }
  EXPECT_FALSE(scheduler.is_budget_aware());
  EXPECT_DOUBLE_EQ(training_round_fraction(scheduler, 50), 1.0);
}

TEST(SkipTrain, PatternMatchesAlgorithm2Formula) {
  // Γt=2, Γs=3, cycle 5, rounds numbered from 1: trains iff
  // (t-1) mod 5 in {0, 1} — i.e. t in {1, 2, 6, 7, 11, 12, ...}.
  const SkipTrainScheduler scheduler(2, 3);
  for (std::size_t t = 1; t <= 30; ++t) {
    const bool expected_train = ((t - 1) % 5) < 2;
    EXPECT_EQ(scheduler.round_kind(t) == RoundKind::kTraining, expected_train)
        << "t=" << t;
    EXPECT_EQ(scheduler.should_train(t, 3, 100), expected_train);
  }
}

TEST(SkipTrain, FirstRoundsOfEveryScheduleAreTrainingRounds) {
  // Regression for the schedule off-by-one: with rounds numbered from 1,
  // every Γ-block starts with its Γtrain training rounds, so rounds
  // 1..Γtrain always train — in particular round 1, for ANY (Γt, Γs).
  // The former `t mod cycle` predicate made round 1 a synchronization
  // round whenever Γtrain <= Γsync (e.g. Γt=Γs=1) and shifted every
  // block by one.
  for (std::size_t gamma_train = 1; gamma_train <= 4; ++gamma_train) {
    for (std::size_t gamma_sync = 1; gamma_sync <= 4; ++gamma_sync) {
      const SkipTrainScheduler scheduler(gamma_train, gamma_sync);
      for (std::size_t t = 1; t <= gamma_train; ++t) {
        EXPECT_EQ(scheduler.round_kind(t), RoundKind::kTraining)
            << "Γt=" << gamma_train << " Γs=" << gamma_sync << " t=" << t;
      }
      EXPECT_EQ(scheduler.round_kind(gamma_train + 1),
                RoundKind::kSynchronization)
          << "Γt=" << gamma_train << " Γs=" << gamma_sync;
    }
  }
}

TEST(SkipTrain, LongRunFractionApproachesEq4) {
  const SkipTrainScheduler scheduler(3, 2);
  const double fraction = training_round_fraction(scheduler, 10000);
  EXPECT_NEAR(fraction, 3.0 / 5.0, 0.001);
}

TEST(SkipTrain, RejectsDegenerateGammas) {
  EXPECT_THROW(SkipTrainScheduler(0, 4), std::invalid_argument);
  EXPECT_THROW(SkipTrainScheduler(4, 0), std::invalid_argument);
}

TEST(SkipTrain, NameMentionsGammas) {
  const SkipTrainScheduler scheduler(4, 2);
  EXPECT_NE(scheduler.name().find("4"), std::string::npos);
  EXPECT_NE(scheduler.name().find("2"), std::string::npos);
}

TEST(Constrained, NeverTrainsOnSyncRounds) {
  const SkipTrainConstrainedScheduler scheduler(
      2, 2, 100, std::vector<std::size_t>{1000, 1000}, 42);
  for (std::size_t t = 1; t <= 40; ++t) {
    if (scheduler.round_kind(t) == RoundKind::kSynchronization) {
      EXPECT_FALSE(scheduler.should_train(t, 0, 1000));
      EXPECT_FALSE(scheduler.should_train(t, 1, 1000));
    }
  }
}

TEST(Constrained, ZeroRemainingBudgetBlocksTraining) {
  const SkipTrainConstrainedScheduler scheduler(
      2, 2, 100, std::vector<std::size_t>{1000}, 42);
  for (std::size_t t = 1; t <= 40; ++t) {
    EXPECT_FALSE(scheduler.should_train(t, 0, 0));
  }
}

TEST(Constrained, FullBudgetBehavesLikeSkipTrain) {
  // τ >= T_train ⇒ p = 1 ⇒ trains in every coordinated training round.
  const std::size_t total = 200;
  const SkipTrainConstrainedScheduler constrained(
      4, 4, total, std::vector<std::size_t>{total}, 7);
  const SkipTrainScheduler plain(4, 4);
  EXPECT_DOUBLE_EQ(constrained.probability(0), 1.0);
  for (std::size_t t = 1; t <= total; ++t) {
    EXPECT_EQ(constrained.should_train(t, 0, 1000),
              plain.should_train(t, 0, 1000));
  }
}

TEST(Constrained, ProbabilityMatchesEq5) {
  const SkipTrainConstrainedScheduler scheduler(
      4, 4, 1000, std::vector<std::size_t>{250, 500, 900}, 7);
  // T_train = 500.
  EXPECT_DOUBLE_EQ(scheduler.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(scheduler.probability(1), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.probability(2), 1.0);
}

TEST(Constrained, DecisionsAreDeterministic) {
  const SkipTrainConstrainedScheduler a(
      2, 2, 1000, std::vector<std::size_t>{100, 200}, 99);
  const SkipTrainConstrainedScheduler b(
      2, 2, 1000, std::vector<std::size_t>{100, 200}, 99);
  for (std::size_t t = 1; t <= 200; ++t) {
    for (std::size_t node = 0; node < 2; ++node) {
      EXPECT_EQ(a.should_train(t, node, 50), b.should_train(t, node, 50));
      // Repeated queries agree (pure function).
      EXPECT_EQ(a.should_train(t, node, 50), a.should_train(t, node, 50));
    }
  }
}

TEST(Constrained, DifferentSeedsDifferentDecisions) {
  const SkipTrainConstrainedScheduler a(
      1, 1, 10000, std::vector<std::size_t>{2500}, 1);
  const SkipTrainConstrainedScheduler b(
      1, 1, 10000, std::vector<std::size_t>{2500}, 2);
  std::size_t differing = 0;
  for (std::size_t t = 1; t <= 1000; ++t) {
    if (a.should_train(t, 0, 99999) != b.should_train(t, 0, 99999)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100u);
}

TEST(Constrained, RealizedRateMatchesProbability) {
  // τ = T_train/2 ⇒ p = 0.5 ⇒ about half of the training rounds fire.
  const std::size_t total = 10000;
  const SkipTrainConstrainedScheduler scheduler(
      1, 1, total, std::vector<std::size_t>{total / 4}, 5);
  std::size_t trained = 0, training_rounds = 0;
  for (std::size_t t = 1; t <= total; ++t) {
    if (scheduler.round_kind(t) != RoundKind::kTraining) continue;
    ++training_rounds;
    if (scheduler.should_train(t, 0, /*remaining=*/total)) ++trained;
  }
  const double rate =
      static_cast<double>(trained) / static_cast<double>(training_rounds);
  EXPECT_NEAR(rate, 0.5, 0.03);
}

TEST(Greedy, TrainsExactlyWhileBudgetRemains) {
  const GreedyScheduler scheduler;
  EXPECT_TRUE(scheduler.is_budget_aware());
  EXPECT_TRUE(scheduler.should_train(1, 0, 5));
  EXPECT_TRUE(scheduler.should_train(100, 3, 1));
  EXPECT_FALSE(scheduler.should_train(2, 0, 0));
  for (std::size_t t = 1; t <= 10; ++t) {
    EXPECT_EQ(scheduler.round_kind(t), RoundKind::kTraining);
  }
}

TEST(Fractions, SkipTrainHalvesTrainingRounds) {
  // The headline energy claim: Γt = Γs halves the training rounds, hence
  // halves training energy vs D-PSGD at equal T.
  const SkipTrainScheduler scheduler(4, 4);
  EXPECT_NEAR(training_round_fraction(scheduler, 1000), 0.5, 0.01);
}

}  // namespace
}  // namespace skiptrain::core
