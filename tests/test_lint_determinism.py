#!/usr/bin/env python3
"""Self-test for tools/lint_determinism.py, run via ctest.

Exercises the linter against the committed fixture corpus under
tools/lint_fixtures/ — a miniature src/bench/tests tree seeding one file
per rule plus clean files proving the exemptions and the lint:allow
escape hatch — and asserts EXACT (file, line, rule) hits and exit codes.
Exactness matters both ways: a missed seeded violation means the rule
regressed; an extra hit means a false positive that would block an
innocent PR.
"""

import os
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "lint_determinism.py")
FIXTURES = os.path.join(REPO_ROOT, "tools", "lint_fixtures")

# Every violation the fixture corpus seeds, exactly.
EXPECTED_FIXTURE_HITS = {
    ("src/metrics/bad_float_accum.cpp", 6, "float-accum"),
    ("src/metrics/bad_float_accum.cpp", 7, "float-accum"),
    ("src/obs/bad_atomic.cpp", 12, "atomic-order"),
    ("src/obs/bad_atomic.cpp", 13, "atomic-order"),
    ("src/obs/bad_atomic.cpp", 14, "atomic-order"),
    ("src/obs/bad_atomic.cpp", 15, "atomic-order"),
    ("src/plane/bad_thread.cpp", 7, "raw-thread"),
    ("src/plane/bad_thread.cpp", 12, "omp"),
    ("src/quant/bad_clone_unpinned.cpp", 5, "fp-contract-pin"),
    ("src/sim/bad_rng.cpp", 8, "rng"),
    ("src/sim/bad_rng.cpp", 9, "rng"),
    ("src/sim/bad_rng.cpp", 10, "rng"),
    ("src/sim/bad_rng.cpp", 11, "time-seed"),
    ("src/sim/bad_rng.cpp", 12, "time-seed"),
    ("src/sweep/bad_unordered.cpp", 12, "unordered-iter"),
    ("src/sweep/bad_unordered.cpp", 22, "unordered-iter"),
}

# Fixture files that must come back CLEAN (exemptions + escape hatches).
CLEAN_FIXTURES = [
    "src/quant/good_clone_pinned.cpp",
    "src/quant/good_clone_var_pinned.cpp",
    "src/sim/allowed_escapes.cpp",
    "src/tensor/kernel_accum.cpp",
    "src/util/good_thread_util.cpp",
    "tests/test_fixture_scope.cpp",
]


def run_linter(*args):
    return subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, check=False)


def parse_hits(stdout):
    hits = set()
    for line in stdout.splitlines():
        if not line.strip():
            continue
        path, lineno, rest = line.split(":", 2)
        rule = rest.split("[", 1)[1].split("]", 1)[0]
        hits.add((path, int(lineno), rule))
    return hits


class LintDeterminismTest(unittest.TestCase):
    def test_fixture_corpus_exact_hits_and_exit_code(self):
        proc = run_linter("--root", FIXTURES)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertEqual(parse_hits(proc.stdout), EXPECTED_FIXTURE_HITS)
        self.assertIn(f"{len(EXPECTED_FIXTURE_HITS)} violation(s)",
                      proc.stderr)

    def test_clean_fixtures_exit_zero(self):
        for rel in CLEAN_FIXTURES:
            with self.subTest(rel=rel):
                proc = run_linter("--root", FIXTURES,
                                  os.path.join(FIXTURES, rel))
                self.assertEqual(proc.returncode, 0,
                                 f"{rel}:\n{proc.stdout}{proc.stderr}")
                self.assertEqual(proc.stdout.strip(), "")

    def test_single_bad_file_scan(self):
        bad = os.path.join(FIXTURES, "src", "sim", "bad_rng.cpp")
        proc = run_linter("--root", FIXTURES, bad)
        self.assertEqual(proc.returncode, 1)
        rules = {rule for (_, _, rule) in parse_hits(proc.stdout)}
        self.assertEqual(rules, {"rng", "time-seed"})

    def test_missing_path_is_usage_error(self):
        proc = run_linter("--root", FIXTURES, "no/such/file.cpp")
        self.assertEqual(proc.returncode, 2)

    def test_missing_root_is_usage_error(self):
        proc = run_linter("--root", os.path.join(FIXTURES, "absent"))
        self.assertEqual(proc.returncode, 2)

    def test_list_rules_exits_zero_and_names_every_rule(self):
        proc = run_linter("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ["rng", "time-seed", "unordered-iter", "raw-thread",
                     "omp", "atomic-order", "fp-contract-pin",
                     "float-accum"]:
            self.assertIn(rule + ":", proc.stdout)

    def test_real_tree_is_clean(self):
        proc = run_linter("--root", REPO_ROOT)
        self.assertEqual(proc.returncode, 0,
                         "determinism lint violations in the tree:\n"
                         + proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
