// Tests for the deterministic RNG substrate — the reproducibility
// foundation of every simulation in this repo.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace skiptrain::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(9);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(22);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  rng.shuffle(std::span<int>(values));
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 15);  // expected ≈ 1 for a uniform permutation
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleAllIsFullSet) {
  Rng rng(32);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(99);
  Rng fork_a = base.fork(1);
  Rng fork_b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (fork_a.next_u64() == fork_b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(7), fb = b.fork(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, BernoulliRate) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, FillNormalAndUniform) {
  Rng rng(55);
  std::vector<float> buffer(10000);
  rng.fill_uniform(buffer, -1.0f, 1.0f);
  for (const float v : buffer) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
  rng.fill_normal(buffer, 2.0f, 0.5f);
  double sum = 0.0;
  for (const float v : buffer) sum += v;
  EXPECT_NEAR(sum / buffer.size(), 2.0, 0.05);
}

TEST(StatelessUniform, DeterministicAndOrderFree) {
  const double a = stateless_uniform(42, 3, 17);
  const double b = stateless_uniform(42, 3, 17);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  // Different coordinates give different draws.
  EXPECT_NE(stateless_uniform(42, 3, 17), stateless_uniform(42, 3, 18));
  EXPECT_NE(stateless_uniform(42, 3, 17), stateless_uniform(42, 4, 17));
  EXPECT_NE(stateless_uniform(42, 3, 17), stateless_uniform(43, 3, 17));
}

TEST(StatelessUniform, MarginalIsUniform) {
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += stateless_uniform(7, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashCombine, Distinguishes) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), hash_combine(0, 1));
  EXPECT_EQ(hash_combine(5, 9), hash_combine(5, 9));
}

}  // namespace
}  // namespace skiptrain::util
