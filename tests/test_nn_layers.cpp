#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/groupnorm.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/model_zoo.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {
namespace {

TEST(Linear, ForwardMatchesManualComputation) {
  Linear layer(2, 3);
  // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 0]
  auto w = layer.weights();
  for (std::size_t i = 0; i < 6; ++i) w[i] = static_cast<float>(i + 1);
  auto b = layer.bias();
  b[0] = 0.5f;
  b[1] = -0.5f;
  b[2] = 0.0f;

  Tensor input({1, 2});
  input.at(0) = 1.0f;
  input.at(1) = 2.0f;
  Tensor output({1, 3});
  layer.forward(input, output);
  EXPECT_FLOAT_EQ(output.at(0), 1.0f + 4.0f + 0.5f);   // 1*1+2*2+0.5
  EXPECT_FLOAT_EQ(output.at(1), 3.0f + 8.0f - 0.5f);   // 1*3+2*4-0.5
  EXPECT_FLOAT_EQ(output.at(2), 5.0f + 12.0f + 0.0f);  // 1*5+2*6
}

TEST(Linear, ShapeValidation) {
  Linear layer(4, 2);
  EXPECT_EQ(layer.output_shape({8, 4}), (Shape{8, 2}));
  EXPECT_THROW(layer.output_shape({8, 5}), std::invalid_argument);
  EXPECT_THROW(layer.output_shape({8}), std::invalid_argument);
}

TEST(Linear, ParameterCount) {
  Linear layer(10, 7);
  EXPECT_EQ(layer.parameters().size(), 10u * 7u + 7u);
  EXPECT_EQ(layer.gradients().size(), layer.parameters().size());
}

TEST(Linear, CloneIsDeepCopy) {
  Linear layer(2, 2);
  layer.weights()[0] = 5.0f;
  auto copy = layer.clone();
  layer.weights()[0] = 9.0f;
  EXPECT_EQ(copy->parameters()[0], 5.0f);
}

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor input({1, 4});
  input.at(0) = -1.0f;
  input.at(1) = 0.0f;
  input.at(2) = 2.0f;
  input.at(3) = -0.5f;
  Tensor output({1, 4});
  relu.forward(input, output);
  EXPECT_EQ(output.at(0), 0.0f);
  EXPECT_EQ(output.at(1), 0.0f);
  EXPECT_EQ(output.at(2), 2.0f);
  EXPECT_EQ(output.at(3), 0.0f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor input({1, 2});
  input.at(0) = -1.0f;
  input.at(1) = 3.0f;
  Tensor grad_out({1, 2});
  grad_out.at(0) = 7.0f;
  grad_out.at(1) = 7.0f;
  Tensor grad_in({1, 2});
  relu.backward(input, grad_out, grad_in);
  EXPECT_EQ(grad_in.at(0), 0.0f);
  EXPECT_EQ(grad_in.at(1), 7.0f);
}

TEST(TanhTest, ForwardAndDerivative) {
  Tanh tanh_layer;
  Tensor input({1, 1});
  input.at(0) = 0.5f;
  Tensor output({1, 1});
  tanh_layer.forward(input, output);
  EXPECT_NEAR(output.at(0), std::tanh(0.5f), 1e-6f);

  Tensor grad_out({1, 1});
  grad_out.at(0) = 1.0f;
  Tensor grad_in({1, 1});
  tanh_layer.backward(input, grad_out, grad_in);
  const float t = std::tanh(0.5f);
  EXPECT_NEAR(grad_in.at(0), 1.0f - t * t, 1e-6f);
}

TEST(Conv2dTest, OutputShapes) {
  Conv2d same(3, 8, 5, 1, 2);
  EXPECT_EQ(same.output_shape({2, 3, 32, 32}), (Shape{2, 8, 32, 32}));
  Conv2d valid(1, 4, 3);
  EXPECT_EQ(valid.output_shape({1, 1, 10, 10}), (Shape{1, 4, 8, 8}));
  Conv2d strided(1, 2, 3, 2, 1);
  EXPECT_EQ(strided.output_shape({1, 1, 9, 9}), (Shape{1, 2, 5, 5}));
  EXPECT_THROW(valid.output_shape({1, 2, 10, 10}), std::invalid_argument);
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1, bias 0 == identity on a single channel.
  Conv2d conv(1, 1, 1);
  conv.parameters()[0] = 1.0f;  // weight
  conv.parameters()[1] = 0.0f;  // bias
  Tensor input({1, 1, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) input.at(i) = static_cast<float>(i);
  Tensor output({1, 1, 2, 2});
  conv.forward(input, output);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(output.at(i), input.at(i));
}

TEST(Conv2dTest, KnownConvolution) {
  // 2x2 averaging kernel over a 3x3 input, valid padding.
  Conv2d conv(1, 1, 2);
  for (std::size_t i = 0; i < 4; ++i) conv.parameters()[i] = 0.25f;
  conv.parameters()[4] = 0.0f;  // bias
  Tensor input({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) input.at(i) = static_cast<float>(i + 1);
  Tensor output({1, 1, 2, 2});
  conv.forward(input, output);
  // windows: {1,2,4,5}=3, {2,3,5,6}=4, {4,5,7,8}=6, {5,6,8,9}=7
  EXPECT_FLOAT_EQ(output.at(0), 3.0f);
  EXPECT_FLOAT_EQ(output.at(1), 4.0f);
  EXPECT_FLOAT_EQ(output.at(2), 6.0f);
  EXPECT_FLOAT_EQ(output.at(3), 7.0f);
}

TEST(Conv2dTest, PaddingContributesZeros) {
  Conv2d conv(1, 1, 3, 1, 1);
  for (std::size_t i = 0; i < 9; ++i) conv.parameters()[i] = 1.0f;
  conv.parameters()[9] = 0.0f;
  Tensor input({1, 1, 2, 2});
  input.fill(1.0f);
  Tensor output({1, 1, 2, 2});
  conv.forward(input, output);
  // Every output sees all four ones (corners of the padded window).
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(output.at(i), 4.0f);
}

TEST(MaxPoolTest, ForwardPicksMaxima) {
  MaxPool2d pool(2);
  Tensor input({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) input.at(i) = static_cast<float>(i);
  Tensor output({1, 1, 2, 2});
  pool.forward(input, output);
  EXPECT_EQ(output.at(0), 5.0f);
  EXPECT_EQ(output.at(1), 7.0f);
  EXPECT_EQ(output.at(2), 13.0f);
  EXPECT_EQ(output.at(3), 15.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor input({1, 1, 2, 2});
  input.at(0) = 1.0f;
  input.at(1) = 9.0f;
  input.at(2) = 3.0f;
  input.at(3) = 2.0f;
  Tensor output({1, 1, 1, 1});
  pool.forward(input, output);
  EXPECT_EQ(output.at(0), 9.0f);

  Tensor grad_out({1, 1, 1, 1});
  grad_out.at(0) = 4.0f;
  Tensor grad_in({1, 1, 2, 2});
  pool.backward(input, grad_out, grad_in);
  EXPECT_EQ(grad_in.at(0), 0.0f);
  EXPECT_EQ(grad_in.at(1), 4.0f);  // the max position
  EXPECT_EQ(grad_in.at(2), 0.0f);
  EXPECT_EQ(grad_in.at(3), 0.0f);
}

TEST(FlattenTest, ReshapesOnly) {
  Flatten flatten;
  EXPECT_EQ(flatten.output_shape({2, 3, 4, 4}), (Shape{2, 48}));
  Tensor input({1, 2, 2, 1});
  for (std::size_t i = 0; i < 4; ++i) input.at(i) = static_cast<float>(i);
  Tensor output({1, 4});
  flatten.forward(input, output);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(output.at(i), input.at(i));
}

TEST(GroupNormTest, NormalizesPerGroup) {
  GroupNorm gn(2, 4);  // gamma=1, beta=0 at init
  Tensor input({1, 4, 2, 2});
  util::Rng rng(3);
  rng.fill_normal(input.data(), 5.0f, 3.0f);
  Tensor output({1, 4, 2, 2});
  gn.forward(input, output);

  // Each group (2 channels x 4 pixels = 8 values) must have mean≈0, var≈1.
  for (std::size_t g = 0; g < 2; ++g) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      const double v = output.at(g * 8 + i);
      sum += v;
      sum_sq += v * v;
    }
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 8.0, 1.0, 1e-2);
  }
}

TEST(GroupNormTest, AffineParamsApply) {
  GroupNorm gn(1, 2);
  auto params = gn.parameters();
  params[0] = 2.0f;  // gamma c0
  params[1] = 2.0f;  // gamma c1
  params[2] = 1.0f;  // beta c0
  params[3] = 1.0f;  // beta c1
  Tensor input({1, 2, 1, 2});
  input.at(0) = -1.0f;
  input.at(1) = 1.0f;
  input.at(2) = -1.0f;
  input.at(3) = 1.0f;
  Tensor output({1, 2, 1, 2});
  gn.forward(input, output);
  // Normalized values are ±1, so outputs are gamma*(±1)+beta = -1 or 3.
  EXPECT_NEAR(output.at(0), -1.0f, 1e-3f);
  EXPECT_NEAR(output.at(1), 3.0f, 1e-3f);
}

TEST(GroupNormTest, InvalidGroupingThrows) {
  EXPECT_THROW(GroupNorm(3, 4), std::invalid_argument);
  EXPECT_THROW(GroupNorm(0, 4), std::invalid_argument);
}

TEST(SequentialTest, ParameterRoundTrip) {
  Sequential model = make_mlp(4, {8}, 3);
  util::Rng rng(1);
  initialize(model, rng);
  std::vector<float> params = model.parameters_flat();
  EXPECT_EQ(params.size(), model.num_parameters());

  Sequential copy = model.clone();
  std::vector<float> copied = copy.parameters_flat();
  EXPECT_EQ(params, copied);

  // set_parameters then get_parameters is the identity.
  for (auto& p : params) p += 1.0f;
  model.set_parameters(params);
  EXPECT_EQ(model.parameters_flat(), params);
}

TEST(SequentialTest, CloneIsIndependent) {
  Sequential model = make_mlp(2, {4}, 2);
  util::Rng rng(2);
  initialize(model, rng);
  Sequential copy = model.clone();
  std::vector<float> params = model.parameters_flat();
  params[0] += 10.0f;
  model.set_parameters(params);
  EXPECT_NE(model.parameters_flat()[0], copy.parameters_flat()[0]);
}

TEST(SequentialTest, ForwardShapesThroughCnn) {
  Sequential model = make_cifar_cnn();
  Tensor input({2, 3, 32, 32});
  const Tensor& logits = model.forward(input);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
}

TEST(SequentialTest, EmptyModelThrows) {
  Sequential model;
  Tensor input({1, 4});
  EXPECT_THROW(model.forward(input), std::logic_error);
}

TEST(ModelZoo, PaperParameterCountsExact) {
  // Table 1: |x| = 89834 (CIFAR-10) and 1690046 (FEMNIST).
  EXPECT_EQ(make_cifar_cnn().num_parameters(), kPaperCifarModelSize);
  EXPECT_EQ(make_femnist_cnn().num_parameters(), kPaperFemnistModelSize);
}

TEST(ModelZoo, FemnistCnnShapes) {
  Sequential model = make_femnist_cnn();
  Tensor input({1, 1, 28, 28});
  const Tensor& logits = model.forward(input);
  EXPECT_EQ(logits.shape(), (Shape{1, 62}));
}

TEST(ModelZoo, SoftmaxRegressionAndMlp) {
  EXPECT_EQ(make_softmax_regression(10, 3).num_parameters(), 33u);
  // 4->8->2: 4*8+8 + 8*2+2 = 58
  EXPECT_EQ(make_mlp(4, {8}, 2).num_parameters(), 58u);
}

TEST(InitTest, DeterministicPerSeed) {
  Sequential a = make_mlp(6, {5}, 4);
  Sequential b = make_mlp(6, {5}, 4);
  util::Rng rng_a(9), rng_b(9), rng_c(10);
  initialize(a, rng_a);
  initialize(b, rng_b);
  EXPECT_EQ(a.parameters_flat(), b.parameters_flat());

  Sequential c = make_mlp(6, {5}, 4);
  initialize(c, rng_c);
  EXPECT_NE(a.parameters_flat(), c.parameters_flat());
}

TEST(InitTest, BiasesAreZeroWeightsBounded) {
  Sequential model = make_mlp(100, {}, 10);
  util::Rng rng(4);
  initialize(model, rng);
  auto* linear = dynamic_cast<Linear*>(&model.layer(0));
  ASSERT_NE(linear, nullptr);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (const float w : linear->weights()) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
  for (const float b : linear->bias()) EXPECT_EQ(b, 0.0f);
}

TEST(SequentialTest, SummaryMentionsLayersAndTotal) {
  Sequential model = make_mlp(4, {8}, 3);
  const std::string summary = model.summary();
  EXPECT_NE(summary.find("Linear(4->8)"), std::string::npos);
  EXPECT_NE(summary.find("total parameters"), std::string::npos);
}

}  // namespace
}  // namespace skiptrain::nn
