// Telemetry subsystem tests: exactness of the sharded registry under
// concurrent writers, span nesting in the emitted trace JSON, and the
// zero-allocation guarantee on the disabled hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

// --- global allocation counter for the zero-allocation test ---------------
// Replacing the global operators in ONE test TU is binary-wide, so the
// counter must stay cheap: one relaxed add per allocation.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace skiptrain::obs {
namespace {

TEST(ObsRegistry, ConcurrentCounterHammerMergesExactly) {
  set_enabled(true);
  const Counter counter_handle = counter("test.hammer.count");
  const Histogram hist_handle = hist("test.hammer.hist");
  // The baseline snapshot must outlive before_hist: find_histogram
  // returns a pointer into the snapshot's own vector (dangling if taken
  // from a temporary — TSan caught exactly that).
  const Snapshot before = snapshot();
  const std::uint64_t before_count =
      before.counter_value("test.hammer.count");
  const HistogramValue* before_hist =
      before.find_histogram("test.hammer.hist");
  const std::uint64_t before_hist_count =
      before_hist != nullptr ? before_hist->count : 0;
  const std::uint64_t before_hist_sum =
      before_hist != nullptr ? before_hist->sum : 0;

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20000;
  // Deliberately raw threads: the hammer must exercise shard
  // registration/retirement from thread exit, which pool workers
  // (which never exit mid-test) cannot.
  std::vector<std::thread> threads;  // lint:allow(raw-thread)
  threads.reserve(kThreads);
  for (std::size_t th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter_handle.add(1);
        hist_handle.record(th + 1);  // thread th contributes value th+1
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Writers have exited: live shards + retired totals must be EXACT.
  // (This also exercises the retired-shard path — every thread's shard
  // was merged into the retired totals on exit.)
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter_value("test.hammer.count") - before_count,
            kThreads * kOpsPerThread);
  const HistogramValue* h = snap.find_histogram("test.hammer.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count - before_hist_count, kThreads * kOpsPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t th = 0; th < kThreads; ++th) {
    expected_sum += (th + 1) * kOpsPerThread;
  }
  EXPECT_EQ(h->sum - before_hist_sum, expected_sum);
  EXPECT_GE(h->max, kThreads);
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  const Counter a = counter("test.idempotent");
  const Counter b = counter("test.idempotent");
  EXPECT_EQ(a.id(), b.id());
}

TEST(ObsRegistry, DisabledRecordsNothing) {
  set_enabled(true);
  const Counter c = counter("test.disabled");
  c.add(5);
  const std::uint64_t before = snapshot().counter_value("test.disabled");
  set_enabled(false);
  c.add(100);
  set_enabled(true);
  EXPECT_EQ(snapshot().counter_value("test.disabled"), before);
}

TEST(ObsRegistry, GaugeTracksLastValueAndHighWaterMark) {
  set_enabled(true);
  const Gauge g = gauge("test.gauge");
  g.set(7);
  g.set(42);
  g.set(3);
  const Snapshot snap = snapshot();
  const GaugeValue* value = snap.find_gauge("test.gauge");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->value, 3);
  EXPECT_GE(value->max, 42);
}

TEST(ObsRegistry, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(ObsRegistry, QuantileUpperBoundBracketsTheData) {
  set_enabled(true);
  const Histogram h = hist("test.quantile");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // find_histogram returns a pointer into the snapshot's own storage, so
  // the snapshot must be a named object, not a destroyed temporary.
  const Snapshot snap = snapshot();
  const HistogramValue* value = snap.find_histogram("test.quantile");
  ASSERT_NE(value, nullptr);
  // p50 of 1..1000 is 500; the bucket upper bound may overshoot by < 2x.
  const std::uint64_t p50 = value->quantile_upper_bound(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LT(p50, 1024u);
  EXPECT_GE(value->quantile_upper_bound(1.0), 1000u);
}

// --- tracing ---------------------------------------------------------------

struct ParsedSpan {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  unsigned tid = 0;
};

std::vector<ParsedSpan> parse_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<ParsedSpan> spans;
  std::string line;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("\"name\":\"");
    if (name_pos == std::string::npos) continue;
    ParsedSpan span;
    const auto name_start = name_pos + 8;
    span.name = line.substr(name_start, line.find('"', name_start) -
                                            name_start);
    EXPECT_EQ(std::sscanf(line.c_str() + line.find("\"ts\":"),
                          "\"ts\":%lf,\"dur\":%lf,\"pid\":0,\"tid\":%u",
                          &span.ts, &span.dur, &span.tid),
              3)
        << line;
    spans.push_back(span);
  }
  return spans;
}

TEST(ObsTrace, NestedSpansAreContainedAndOrdered) {
  set_enabled(true);
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_trace_test.json")
          .string();
  std::filesystem::remove(path);
  ASSERT_TRUE(start_tracing(path));
  EXPECT_TRUE(tracing_active());
  // A second start while active must refuse (the caller keeps ownership).
  EXPECT_FALSE(start_tracing(path + ".second"));
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner");
    }
    {
      OBS_SPAN("inner");
    }
  }
  stop_tracing();
  EXPECT_FALSE(tracing_active());

  const std::vector<ParsedSpan> spans = parse_trace(path);
  ASSERT_EQ(spans.size(), 3u);
  const ParsedSpan* outer = nullptr;
  std::vector<const ParsedSpan*> inners;
  for (const ParsedSpan& span : spans) {
    if (span.name == "outer") outer = &span;
    if (span.name == "inner") inners.push_back(&span);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(inners.size(), 2u);
  for (const ParsedSpan* inner : inners) {
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
  }
  // The two inner spans are disjoint and in program order.
  EXPECT_LE(inners[0]->ts + inners[0]->dur, inners[1]->ts + 1e-3);

  // The file is a complete, parseable JSON document (no trailing comma,
  // closed array/object).
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(text.find(",\n]"), std::string::npos);
  EXPECT_NE(text.find("\n]}"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsTrace, SpansDroppedWhenNotTracing) {
  EXPECT_FALSE(tracing_active());
  OBS_SPAN("never.emitted");  // must be a safe no-op
  SUCCEED();
}

// --- phase accounting ------------------------------------------------------

TEST(ObsPhase, NotePhaseAccumulatesAndMerges) {
  PhaseStats stats;
  const std::uint64_t start = now_ns();
  note_phase(stats, Phase::kTrain, start);
  note_phase(stats, Phase::kTrain, start);
  note_phase(stats, Phase::kGossip, start);
  EXPECT_EQ(stats.calls[static_cast<std::size_t>(Phase::kTrain)], 2u);
  EXPECT_EQ(stats.calls[static_cast<std::size_t>(Phase::kGossip)], 1u);
  EXPECT_GE(stats.total_seconds(), 0.0);

  PhaseStats other;
  other.add(Phase::kEval, 2'000'000'000ULL);  // 2 s
  stats.merge(other);
  EXPECT_EQ(stats.calls[static_cast<std::size_t>(Phase::kEval)], 1u);
  EXPECT_NEAR(stats.seconds[static_cast<std::size_t>(Phase::kEval)], 2.0,
              1e-9);

  TrialTelemetry a;
  a.phases = stats;
  a.wire_bytes = 10;
  a.rounds = 3;
  TrialTelemetry b;
  b.wire_bytes = 32;
  b.rounds = 4;
  b.merge(a);
  EXPECT_EQ(b.wire_bytes, 42u);
  EXPECT_EQ(b.rounds, 7u);
  EXPECT_EQ(b.phases.calls[static_cast<std::size_t>(Phase::kTrain)], 2u);
}

TEST(ObsPhase, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kTrain), "train");
  EXPECT_STREQ(phase_span_name(Phase::kGossip), "round.gossip");
  EXPECT_STREQ(phase_name(Phase::kCheckpoint), "checkpoint");
}

TEST(ObsStopWatch, MeasuresElapsedTime) {
  const StopWatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  EXPECT_LT(watch.seconds(), 60.0);
}

// --- zero allocation on the hot path ---------------------------------------

TEST(ObsRegistry, RecordingThroughHandlesNeverAllocates) {
  set_enabled(true);
  // Pre-warm: registration and this thread's shard may allocate ONCE.
  const Counter c = counter("test.zeroalloc.count");
  const Histogram h = hist("test.zeroalloc.hist");
  const Gauge g = gauge("test.zeroalloc.gauge");
  c.add(1);
  h.record(1);
  g.set(1);

  // Enabled-path recording through existing handles: no allocation.
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c.add(1);
    h.record(static_cast<std::uint64_t>(i));
    g.set(i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "enabled-mode record allocated";

  // Disabled mode: the same calls plus untraced spans are allocation-free.
  set_enabled(false);
  before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c.add(1);
    h.record(static_cast<std::uint64_t>(i));
    g.set(i);
    OBS_SPAN("test.zeroalloc.span");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "disabled-mode record allocated";
  set_enabled(true);
}

}  // namespace
}  // namespace skiptrain::obs
