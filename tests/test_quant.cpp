#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "quant/codec.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::quant {
namespace {

// --- names / wire math ------------------------------------------------------

TEST(Codec, TokensRoundTripThroughParse) {
  for (const Codec codec : all_codecs()) {
    EXPECT_EQ(parse_codec(codec_token(codec)), codec);
  }
  EXPECT_EQ(parse_codec("fp32"), Codec::kIdentity);   // display alias
  EXPECT_EQ(parse_codec("int8d"), Codec::kInt8Dithered);
  EXPECT_THROW((void)parse_codec("int4"), std::invalid_argument);
}

TEST(Codec, WireBytesPerParam) {
  EXPECT_DOUBLE_EQ(wire_bytes_per_param(Codec::kIdentity), 4.0);
  EXPECT_DOUBLE_EQ(wire_bytes_per_param(Codec::kFp16), 2.0);
  EXPECT_DOUBLE_EQ(wire_bytes_per_param(Codec::kInt8), 1.125);
  EXPECT_DOUBLE_EQ(wire_bytes_per_param(Codec::kInt8Dithered), 1.125);
}

TEST(Codec, QuantizedRowWireBytesAreExact) {
  std::vector<float> row(130, 0.5f);
  row[7] = -3.0f;  // non-constant so scales are exercised

  QuantizedRow wire;
  make_codec(Codec::kIdentity)->encode(row, wire);
  EXPECT_EQ(wire.wire_bytes(), 130u * 4u);
  make_codec(Codec::kFp16)->encode(row, wire);
  EXPECT_EQ(wire.wire_bytes(), 130u * 2u);
  // 130 values -> 3 blocks of <=64, each with an 8-byte (lo, scale) header.
  make_codec(Codec::kInt8)->encode(row, wire);
  EXPECT_EQ(wire.wire_bytes(), 130u + 3u * 8u);
}

TEST(Codec, CommModelForDerivesBytesPerParam) {
  EXPECT_DOUBLE_EQ(comm_model_for(Codec::kIdentity).bytes_per_param, 4.0);
  EXPECT_DOUBLE_EQ(comm_model_for(Codec::kFp16).bytes_per_param, 2.0);
  EXPECT_DOUBLE_EQ(comm_model_for(Codec::kInt8).bytes_per_param, 1.125);
  // Other knobs of the base model survive.
  energy::CommModel base;
  base.mwh_per_megabyte = 99.0;
  EXPECT_DOUBLE_EQ(comm_model_for(Codec::kFp16, base).mwh_per_megabyte, 99.0);
}

// --- fp16 scalar conversions ------------------------------------------------

TEST(Fp16, EveryFiniteHalfRoundTripsExactly) {
  // Exhaustive: decode every non-NaN half pattern and re-encode it.
  for (std::uint32_t h = 0; h <= 0xffffu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const bool is_nan = (half & 0x7c00u) == 0x7c00u && (half & 0x3ffu) != 0;
    if (is_nan) continue;
    const float value = fp16_to_float(half);
    EXPECT_EQ(fp16_from_float(value), half) << "half pattern " << h;
  }
}

TEST(Fp16, SpecialValues) {
  EXPECT_EQ(fp16_from_float(0.0f), 0x0000u);
  EXPECT_EQ(fp16_from_float(-0.0f), 0x8000u);
  EXPECT_EQ(fp16_from_float(1.0f), 0x3c00u);
  EXPECT_EQ(fp16_from_float(65504.0f), 0x7bffu);   // largest finite half
  EXPECT_EQ(fp16_from_float(65520.0f), 0x7c00u);   // rounds to +Inf
  EXPECT_EQ(fp16_from_float(1.0e9f), 0x7c00u);     // overflow -> +Inf
  EXPECT_EQ(fp16_from_float(-1.0e9f), 0xfc00u);
  EXPECT_EQ(fp16_from_float(1.0e-9f), 0x0000u);    // underflow -> 0
  const float nan = fp16_to_float(
      fp16_from_float(std::numeric_limits<float>::quiet_NaN()));
  EXPECT_TRUE(std::isnan(nan));
}

TEST(Fp16, FuzzErrorWithinHalfUlp) {
  util::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto value = static_cast<float>(rng.normal(0.0, 10.0));
    if (std::abs(value) < 6.2e-5f) continue;  // below the normal-half range
    const float decoded = fp16_to_float(fp16_from_float(value));
    // RNE error <= ulp/2 = 2^(ilogb(value) - 11) for normal halves.
    const float bound = std::ldexp(1.0f, std::ilogb(value) - 11);
    EXPECT_LE(std::abs(decoded - value), bound) << "value " << value;
  }
}

// --- int8 codecs ------------------------------------------------------------

/// Per-block quantization step of `row` at block b (mirrors the codec).
float block_scale_of(std::span<const float> row, std::size_t b) {
  const std::size_t begin = b * kInt8BlockValues;
  const std::size_t end = std::min(begin + kInt8BlockValues, row.size());
  float lo = row[begin], hi = row[begin];
  for (std::size_t i = begin; i < end; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  return (hi - lo) / 255.0f;
}

class Int8ErrorBound : public ::testing::TestWithParam<Codec> {};

TEST_P(Int8ErrorBound, FuzzWithinHalfScalePerBlock) {
  const auto codec = make_codec(GetParam(), /*seed=*/7);
  codec->begin_round(3);
  util::Rng rng(12);
  for (const std::size_t dim : {1UL, 3UL, 64UL, 130UL, 1000UL}) {
    std::vector<float> row(dim);
    rng.fill_normal(row, 0.0f, 2.0f);
    QuantizedRow wire;
    codec->encode(row, wire);
    std::vector<float> decoded(dim);
    codec->decode(wire, decoded);
    for (std::size_t i = 0; i < dim; ++i) {
      const float scale = block_scale_of(row, i / kInt8BlockValues);
      EXPECT_LE(std::abs(decoded[i] - row[i]), 0.5f * scale + 1e-5f)
          << "dim " << dim << " coord " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothVariants, Int8ErrorBound,
                         ::testing::Values(Codec::kInt8,
                                           Codec::kInt8Dithered));

TEST(Int8, ConstantBlockDecodesExactly) {
  const std::vector<float> row(70, 1.25f);
  for (const Codec kind : {Codec::kInt8, Codec::kInt8Dithered}) {
    const auto codec = make_codec(kind, 1);
    QuantizedRow wire;
    codec->encode(row, wire);
    std::vector<float> decoded(row.size());
    codec->decode(wire, decoded);
    for (const float v : decoded) EXPECT_EQ(v, 1.25f);
  }
}

TEST(Int8Dithered, RoundSharedDecodeIsIdenticalAcrossInstances) {
  std::vector<float> row(200);
  util::Rng rng(13);
  rng.fill_normal(row, 0.0f, 1.0f);

  const auto sender = make_codec(Codec::kInt8Dithered, /*seed=*/42);
  sender->begin_round(5);
  QuantizedRow wire;
  sender->encode(row, wire);

  // Receivers share the seed but have NOT seen begin_round(5): decode
  // reads the round id from the payload, so everyone reconstructs the
  // identical dither stream.
  const auto receiver = make_codec(Codec::kInt8Dithered, /*seed=*/42);
  std::vector<float> a(row.size()), b(row.size());
  sender->decode(wire, a);
  receiver->decode(wire, b);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST(Int8Dithered, DitherVariesByRound) {
  std::vector<float> row(256);
  util::Rng rng(14);
  rng.fill_normal(row, 0.0f, 1.0f);
  const auto codec = make_codec(Codec::kInt8Dithered, 42);
  QuantizedRow r1, r2;
  codec->begin_round(1);
  codec->encode(row, r1);
  codec->begin_round(2);
  codec->encode(row, r2);
  EXPECT_NE(r1.codes, r2.codes);  // same row, different dither stream
}

TEST(Fp16Codec, WireSaturatesInsteadOfShippingInf) {
  // A finite parameter beyond the half range (or a genuine Inf) must not
  // reach the wire as Inf: the dense engine's exact-self correction would
  // compute Inf - Inf = NaN and poison the fleet. The wire saturates to
  // ±65504; NaN (an already-broken run) is preserved.
  const auto codec = make_codec(Codec::kFp16);
  const std::vector<float> row = {1.0e9f, -1.0e9f, 70000.0f,
                                  std::numeric_limits<float>::infinity(),
                                  -std::numeric_limits<float>::infinity(),
                                  1.0f};
  QuantizedRow wire;
  codec->encode(row, wire);
  std::vector<float> decoded(row.size());
  codec->decode(wire, decoded);
  EXPECT_EQ(decoded[0], 65504.0f);
  EXPECT_EQ(decoded[1], -65504.0f);
  EXPECT_EQ(decoded[2], 65504.0f);
  EXPECT_EQ(decoded[3], 65504.0f);
  EXPECT_EQ(decoded[4], -65504.0f);
  EXPECT_EQ(decoded[5], 1.0f);
  // The scalar conversion keeps IEEE overflow-to-Inf semantics; only the
  // wire path saturates.
  EXPECT_EQ(fp16_from_float(1.0e9f), 0x7c00u);
}

TEST(Codec, IdentityRoundTripsBitwise) {
  std::vector<float> row(333);
  util::Rng rng(15);
  rng.fill_normal(row, 0.0f, 3.0f);
  const auto codec = make_codec(Codec::kIdentity);
  QuantizedRow wire;
  codec->encode(row, wire);
  std::vector<float> decoded(row.size());
  codec->decode(wire, decoded);
  EXPECT_EQ(0,
            std::memcmp(row.data(), decoded.data(), row.size() * sizeof(float)));
}

TEST(Codec, DecodeValidatesPayload) {
  const auto fp16 = make_codec(Codec::kFp16);
  QuantizedRow wire;
  fp16->encode(std::vector<float>(8, 1.0f), wire);
  std::vector<float> out(8);
  EXPECT_THROW(make_codec(Codec::kInt8)->decode(wire, out),
               std::invalid_argument);
  std::vector<float> wrong_dim(9);
  EXPECT_THROW(fp16->decode(wire, wrong_dim), std::invalid_argument);
}

TEST(Codec, EncodeDecodeIsThreadCountInvariant) {
  // The per-row fan-out the engines run must be bit-identical whether it
  // executes serially or on the pool.
  constexpr std::size_t kRows = 16, kDim = 1000;
  std::vector<std::vector<float>> rows(kRows, std::vector<float>(kDim));
  util::Rng rng(16);
  for (auto& row : rows) rng.fill_normal(row, 0.0f, 1.0f);

  const auto run = [&](bool serial) {
    const auto codec = make_codec(Codec::kInt8Dithered, 42);
    codec->begin_round(9);
    std::vector<std::vector<float>> decoded(kRows,
                                            std::vector<float>(kDim));
    const auto work = [&](std::size_t i) {
      QuantizedRow wire;
      codec->encode(rows[i], wire);
      codec->decode(wire, decoded[i]);
    };
    if (serial) {
      util::ThreadPool::ScopedForceSerial force;
      util::parallel_for(0, kRows, work);
    } else {
      util::parallel_for(0, kRows, work);
    }
    return decoded;
  };

  const auto serial = run(true);
  const auto parallel = run(false);
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(0, std::memcmp(serial[i].data(), parallel[i].data(),
                             kDim * sizeof(float)))
        << "row " << i;
  }
}

// --- engine integration -----------------------------------------------------

struct QuantFixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  energy::Fleet fleet;

  QuantFixture() : fleet(energy::Fleet::even(8, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = 8;
    config.samples_per_node = 30;
    config.test_pool = 100;
    data = data::make_cifar_synthetic(config);
    prototype = nn::make_mlp(config.feature_dim, {8}, 10);
    util::Rng rng(1);
    nn::initialize(prototype, rng);
    util::Rng topo_rng(2);
    topology = graph::make_random_regular(8, 4, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
  }

  sim::RoundEngine make_engine(const core::RoundScheduler& scheduler,
                               Codec codec, std::size_t sparse_k = 0) {
    std::vector<std::size_t> degrees(8, 4);
    energy::EnergyAccountant accountant(fleet, comm_model_for(codec), 89834,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 2;
    config.batch_size = 8;
    config.sparse_exchange_k = sparse_k;
    config.exchange_codec = codec;
    return sim::RoundEngine(prototype, data, mixing, scheduler,
                            std::move(accountant), config);
  }
};

TEST(QuantEngine, IdentityCodecIsBitIdenticalToDensePath) {
  QuantFixture fixture;
  const core::DpsgdScheduler scheduler;
  // Default-constructed config (the pre-quantization configuration) must
  // equal an explicit identity selection bit-for-bit...
  std::vector<std::size_t> degrees(8, 4);
  energy::EnergyAccountant accountant(fixture.fleet, energy::CommModel{},
                                      89834, std::move(degrees));
  sim::EngineConfig default_config;
  default_config.local_steps = 2;
  default_config.batch_size = 8;
  sim::RoundEngine baseline(fixture.prototype, fixture.data, fixture.mixing,
                            scheduler, std::move(accountant), default_config);
  auto explicit_identity = fixture.make_engine(scheduler, Codec::kIdentity);
  baseline.run_rounds(3);
  explicit_identity.run_rounds(3);
  const auto a = baseline.node_parameters();
  const auto b = explicit_identity.node_parameters();
  EXPECT_EQ(0, std::memcmp(a.flat().data(), b.flat().data(),
                           a.rows * a.dim * sizeof(float)));

  // ...and a non-identity codec must actually take the staging path:
  // fp16 rounding perturbs the aggregation, so the planes differ.
  auto fp16 = fixture.make_engine(scheduler, Codec::kFp16);
  fp16.run_rounds(3);
  const auto c = fp16.node_parameters();
  EXPECT_NE(0, std::memcmp(a.flat().data(), c.flat().data(),
                           a.rows * a.dim * sizeof(float)));
}

TEST(QuantEngine, Fp16ExchangeTracksDenseClosely) {
  QuantFixture fixture;
  const core::DpsgdScheduler scheduler;
  auto dense = fixture.make_engine(scheduler, Codec::kIdentity);
  auto fp16 = fixture.make_engine(scheduler, Codec::kFp16);
  dense.run_rounds(4);
  fp16.run_rounds(4);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto a = dense.node_parameters()[i];
    const auto b = fp16.node_parameters()[i];
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 2e-2f) << "node " << i << " coord " << k;
    }
  }
}

TEST(QuantEngine, Int8SyncRoundsStillContract) {
  QuantFixture fixture;
  // Sync-only via Greedy with zero budgets: every round is pure gossip.
  const core::GreedyScheduler scheduler;
  std::vector<std::size_t> degrees(8, 4);
  energy::EnergyAccountant accountant(
      fixture.fleet, comm_model_for(Codec::kInt8Dithered), 89834,
      std::move(degrees));
  accountant.set_budgets(std::vector<std::size_t>(8, 0));
  sim::EngineConfig config;
  config.exchange_codec = Codec::kInt8Dithered;
  sim::RoundEngine engine(fixture.prototype, fixture.data, fixture.mixing,
                          scheduler, std::move(accountant), config);

  util::Rng rng(5);
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  const auto spread = [&] {
    double total = 0.0;
    const auto reference = engine.node_parameters()[0];
    for (std::size_t i = 1; i < 8; ++i) {
      const auto params = engine.node_parameters()[i];
      for (std::size_t k = 0; k < params.size(); ++k) {
        total += std::abs(params[k] - reference[k]);
      }
    }
    return total;
  };
  const double before = spread();
  engine.run_rounds(12);
  EXPECT_LT(spread(), before * 0.5);
}

TEST(QuantEngine, CommEnergyScalesWithCodecBytes) {
  QuantFixture fixture;
  const core::DpsgdScheduler scheduler;
  auto dense = fixture.make_engine(scheduler, Codec::kIdentity);
  auto fp16 = fixture.make_engine(scheduler, Codec::kFp16);
  auto int8 = fixture.make_engine(scheduler, Codec::kInt8);
  dense.run_rounds(3);
  fp16.run_rounds(3);
  int8.run_rounds(3);
  const double dense_wh = dense.accountant().total_comm_wh();
  // Halving is a power-of-two rescale, so fp16 matches exactly; the int8
  // ratio 9/32 is compared to within rounding.
  EXPECT_DOUBLE_EQ(fp16.accountant().total_comm_wh(), dense_wh * 2.0 / 4.0);
  EXPECT_NEAR(int8.accountant().total_comm_wh(), dense_wh * 1.125 / 4.0,
              dense_wh * 1e-12);
  // Training energy is untouched by the wire format.
  EXPECT_DOUBLE_EQ(fp16.accountant().total_training_wh(),
                   dense.accountant().total_training_wh());
}

TEST(QuantEngine, SparseQuantCompositionMultipliesSavings) {
  QuantFixture fixture;
  const core::DpsgdScheduler scheduler;
  const std::size_t dim = fixture.prototype.num_parameters();
  auto dense = fixture.make_engine(scheduler, Codec::kIdentity);
  auto composed =
      fixture.make_engine(scheduler, Codec::kInt8Dithered, dim / 10);
  dense.run_rounds(3);
  composed.run_rounds(3);
  const double ratio = composed.accountant().total_comm_wh() /
                       dense.accountant().total_comm_wh();
  // ~10% of the coordinates at ~28% of the bytes each.
  EXPECT_NEAR(ratio, 0.1 * 1.125 / 4.0, 0.005);
}

TEST(QuantEngine, MaskedInt8ExchangeStillContracts) {
  QuantFixture fixture;
  const core::GreedyScheduler scheduler;
  std::vector<std::size_t> degrees(8, 4);
  energy::EnergyAccountant accountant(
      fixture.fleet, comm_model_for(Codec::kInt8), 89834, std::move(degrees));
  accountant.set_budgets(std::vector<std::size_t>(8, 0));
  sim::EngineConfig config;
  config.exchange_codec = Codec::kInt8;
  config.sparse_exchange_k = fixture.prototype.num_parameters() / 4;
  sim::RoundEngine engine(fixture.prototype, fixture.data, fixture.mixing,
                          scheduler, std::move(accountant), config);
  util::Rng rng(6);
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  const auto spread = [&] {
    double total = 0.0;
    const auto reference = engine.node_parameters()[0];
    for (std::size_t i = 1; i < 8; ++i) {
      const auto params = engine.node_parameters()[i];
      for (std::size_t k = 0; k < params.size(); ++k) {
        total += std::abs(params[k] - reference[k]);
      }
    }
    return total;
  };
  engine.run_round();
  const double before = spread();
  engine.run_rounds(12);
  EXPECT_LT(spread(), before * 0.8);
}

}  // namespace
}  // namespace skiptrain::quant
