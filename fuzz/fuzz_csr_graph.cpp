// libFuzzer target: the CSR adjacency text parser (`skiptrain-csr v1`).
// Structural violations — asymmetric edges, self-loops, out-of-range
// columns, disconnected graphs, absurd node counts — must throw, never
// crash or allocate proportionally to a lying header.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "graph/sparse.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    (void)skiptrain::graph::CsrGraph::parse(in, "fuzz-input");
  } catch (const std::exception&) {
  }
  return 0;
}
