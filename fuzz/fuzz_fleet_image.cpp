// libFuzzer target: the fleet-image probe — the parser that every
// resume/fallback path trusts first. Hostile bytes must produce a clean
// ckpt exception, never a crash, hang, or unbounded allocation (the
// probe's bounded readers cap every count against the byte budget).
#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "ckpt/fleet_image.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    (void)skiptrain::ckpt::probe_fleet_image(in, size, "fuzz-input");
  } catch (const std::exception&) {
    // Rejection is the expected outcome for almost every mutation.
  }
  return 0;
}
