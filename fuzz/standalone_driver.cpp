// Corpus-replay driver for toolchains without libFuzzer (GCC builds and
// the CI fuzz smoke): feeds every file passed on the command line — or
// every regular file inside a directory argument — through the target's
// LLVMFuzzerTestOneInput. Exit 0 means every input was survived; any
// crash/sanitizer abort fails the run. Under Clang the same target
// sources link against -fsanitize=fuzzer instead and this file is
// omitted.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "standalone_driver: no such input %s\n", argv[i]);
      return 2;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-dir>...\n"
                 "(replay driver; build with clang for mutation fuzzing)\n",
                 argv[0]);
    return 2;
  }
  for (const std::filesystem::path& path : inputs) {
    const std::vector<std::uint8_t> bytes = read_bytes(path);
    (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu corpus inputs without incident\n", inputs.size());
  return 0;
}
