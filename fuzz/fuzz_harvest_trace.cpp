// libFuzzer target: the harvest-trace CSV loader. Non-monotone
// timestamps, NaN/negative harvest, gappy node ids, binary trailing
// bytes — every malformed line must be rejected with an exception
// naming it, never accepted or fatal.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "scenario/trace.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    (void)skiptrain::scenario::HarvestTrace::parse_csv(in, "fuzz-input");
  } catch (const std::exception&) {
  }
  return 0;
}
